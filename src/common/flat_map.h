#ifndef SEVE_COMMON_FLAT_MAP_H_
#define SEVE_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <utility>
#include <vector>

namespace seve {

/// Open-addressing hash map with linear probing over a power-of-two slot
/// array. Replaces std::unordered_map on the closure-engine hot paths
/// (the server queue's per-object writer index, the world-state object
/// store, OCC/lock version maps): one flat array probe instead of a
/// bucket-pointer chase, and erasure is tombstone-free — deleted slots
/// are healed immediately by backward-shifting the displaced run, so
/// probe sequences never grow with deletion history.
///
/// Requirements: Key equality-comparable + hashable, Value
/// default-constructible and movable. Pointers returned by Find remain
/// valid until the next insertion or erasure.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatMap {
 public:
  FlatMap() = default;

  FlatMap(std::initializer_list<std::pair<Key, Value>> init) {
    Reserve(init.size());
    for (const auto& kv : init) (*this)[kv.first] = kv.second;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  Value* Find(const Key& key) {
    const size_t i = FindIndex(key);
    return i == kNone ? nullptr : &slots_[i].value;
  }
  const Value* Find(const Key& key) const {
    const size_t i = FindIndex(key);
    return i == kNone ? nullptr : &slots_[i].value;
  }
  bool Contains(const Key& key) const { return FindIndex(key) != kNone; }

  /// Returns {value pointer, inserted}. A newly inserted slot holds a
  /// default-constructed Value.
  std::pair<Value*, bool> TryEmplace(const Key& key) {
    if ((size_ + 1) * 8 > slots_.size() * 7) Grow();
    size_t i = Hash{}(key) & mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return {&slots_[i].value, false};
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = Value{};
    ++size_;
    return {&slots_[i].value, true};
  }

  Value& operator[](const Key& key) { return *TryEmplace(key).first; }

  /// Removes `key` if present. Backward-shift deletion: every displaced
  /// entry in the probe run after the hole is moved back into it, so no
  /// tombstone is left behind.
  bool Erase(const Key& key) {
    size_t i = FindIndex(key);
    if (i == kNone) return false;
    size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      const size_t home = Hash{}(slots_[j].key) & mask_;
      // Slot j may fill the hole at i only if its probe path passes
      // through i, i.e. home is cyclically outside (i, j].
      if (((j - home) & mask_) < ((j - i) & mask_)) continue;
      slots_[i] = std::move(slots_[j]);
      i = j;
    }
    used_[i] = 0;
    slots_[i].value = Value{};  // release the payload eagerly
    --size_;
    return true;
  }

  void Clear() {
    std::fill(used_.begin(), used_.end(), uint8_t{0});
    for (Slot& s : slots_) s.value = Value{};
    size_ = 0;
  }

  void Reserve(size_t n) {
    while (n * 8 > slots_.size() * 7) Grow();
  }

  /// Calls fn(key, value) for every entry, in slot order (hash order —
  /// callers needing determinism must sort, as with unordered_map).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
  };
  static constexpr size_t kNone = ~size_t{0};

  size_t FindIndex(const Key& key) const {
    if (size_ == 0) return kNone;
    size_t i = Hash{}(key) & mask_;
    while (used_[i]) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
    }
    return kNone;
  }

  void Grow() {
    const size_t new_cap = slots_.empty() ? 16 : slots_.size() * 2;
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_used = std::move(used_);
    slots_ = std::vector<Slot>(new_cap);
    used_.assign(new_cap, 0);
    mask_ = new_cap - 1;
    for (size_t idx = 0; idx < old_slots.size(); ++idx) {
      if (!old_used[idx]) continue;
      size_t i = Hash{}(old_slots[idx].key) & mask_;
      while (used_[i]) i = (i + 1) & mask_;
      used_[i] = 1;
      slots_[i] = std::move(old_slots[idx]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> used_;
  size_t size_ = 0;
  size_t mask_ = 0;
};

}  // namespace seve

#endif  // SEVE_COMMON_FLAT_MAP_H_
