#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace seve {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire-style rejection to kill modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high-quality mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double scale = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * scale;
  has_cached_gaussian_ = true;
  return u * scale;
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the original seed with the stream id through SplitMix64 so forks
  // do not correlate with the parent sequence.
  uint64_t mix = seed_ ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  SplitMix64(&mix);
  return Rng(mix);
}

}  // namespace seve
