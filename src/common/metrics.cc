#include "common/metrics.h"

#include <cstdio>

namespace seve {

void ProtocolStats::Merge(const ProtocolStats& other) {
  actions_submitted += other.actions_submitted;
  actions_committed += other.actions_committed;
  actions_dropped += other.actions_dropped;
  actions_reconciled += other.actions_reconciled;
  actions_evaluated += other.actions_evaluated;
  out_of_order_evals += other.out_of_order_evals;
  blind_writes += other.blind_writes;
  closure_visits += other.closure_visits;
  closure_size.Merge(other.closure_size);
  response_time_us.Merge(other.response_time_us);
}

std::string ProtocolStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "submitted=%lld committed=%lld dropped=%lld (%.2f%%) "
                "reconciled=%lld evaluated=%lld ooo=%lld blind_writes=%lld",
                static_cast<long long>(actions_submitted),
                static_cast<long long>(actions_committed),
                static_cast<long long>(actions_dropped), DropRate() * 100.0,
                static_cast<long long>(actions_reconciled),
                static_cast<long long>(actions_evaluated),
                static_cast<long long>(out_of_order_evals),
                static_cast<long long>(blind_writes));
  std::string out = buf;
  out += "\n  response_us: " + response_time_us.ToString();
  return out;
}

}  // namespace seve
