#include "common/metrics.h"

#include <cstdio>

namespace seve {

void ChannelStats::Merge(const ChannelStats& other) {
  data_frames += other.data_frames;
  retransmits += other.retransmits;
  rtx_timeouts += other.rtx_timeouts;
  rtx_abandoned += other.rtx_abandoned;
  dup_drops += other.dup_drops;
  out_of_order += other.out_of_order;
  stale_drops += other.stale_drops;
  acks_sent += other.acks_sent;
  ack_bytes += other.ack_bytes;
}

std::string ChannelStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "frames=%lld rtx=%lld timeouts=%lld abandoned=%lld "
                "dups=%lld ooo=%lld stale=%lld acks=%lld ack_bytes=%lld",
                static_cast<long long>(data_frames),
                static_cast<long long>(retransmits),
                static_cast<long long>(rtx_timeouts),
                static_cast<long long>(rtx_abandoned),
                static_cast<long long>(dup_drops),
                static_cast<long long>(out_of_order),
                static_cast<long long>(stale_drops),
                static_cast<long long>(acks_sent),
                static_cast<long long>(ack_bytes));
  return buf;
}

void FanoutCounters::Merge(const FanoutCounters& other) {
  push_batches += other.push_batches;
  coalesced_pushes += other.coalesced_pushes;
  superseded_moves += other.superseded_moves;
  dirty_slots_flushed += other.dirty_slots_flushed;
  flush_cycles += other.flush_cycles;
  route_alloc += other.route_alloc;
}

void SyncCounters::Merge(const SyncCounters& other) {
  sync_rounds += other.sync_rounds;
  strata_bytes += other.strata_bytes;
  ibf_cells += other.ibf_cells;
  decode_failures += other.decode_failures;
  fallbacks += other.fallbacks;
  delta_rejoins += other.delta_rejoins;
  objects_shipped += other.objects_shipped;
  objects_removed += other.objects_removed;
  delta_bytes += other.delta_bytes;
  full_bytes_estimate += other.full_bytes_estimate;
  ae_rounds += other.ae_rounds;
  ae_objects_repaired += other.ae_objects_repaired;
  owner_repairs += other.owner_repairs;
  nacks += other.nacks;
  snapshot_retries += other.snapshot_retries;
  if (other.max_chunks_per_tick > max_chunks_per_tick) {
    max_chunks_per_tick = other.max_chunks_per_tick;
  }
}

void ProtocolStats::Merge(const ProtocolStats& other) {
  actions_submitted += other.actions_submitted;
  actions_committed += other.actions_committed;
  actions_dropped += other.actions_dropped;
  actions_reconciled += other.actions_reconciled;
  actions_evaluated += other.actions_evaluated;
  out_of_order_evals += other.out_of_order_evals;
  blind_writes += other.blind_writes;
  closure_visits += other.closure_visits;
  rejoins += other.rejoins;
  snapshot_chunks += other.snapshot_chunks;
  closure_size.Merge(other.closure_size);
  response_time_us.Merge(other.response_time_us);
  channel.Merge(other.channel);
  fanout.Merge(other.fanout);
  sync.Merge(other.sync);
}

std::string ProtocolStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "submitted=%lld committed=%lld dropped=%lld (%.2f%%) "
                "reconciled=%lld evaluated=%lld ooo=%lld blind_writes=%lld",
                static_cast<long long>(actions_submitted),
                static_cast<long long>(actions_committed),
                static_cast<long long>(actions_dropped), DropRate() * 100.0,
                static_cast<long long>(actions_reconciled),
                static_cast<long long>(actions_evaluated),
                static_cast<long long>(out_of_order_evals),
                static_cast<long long>(blind_writes));
  std::string out = buf;
  if (rejoins != 0 || snapshot_chunks != 0) {
    std::snprintf(buf, sizeof(buf), " rejoins=%lld snapshot_chunks=%lld",
                  static_cast<long long>(rejoins),
                  static_cast<long long>(snapshot_chunks));
    out += buf;
  }
  out += "\n  response_us: " + response_time_us.ToString();
  if (channel.data_frames != 0 || channel.acks_sent != 0) {
    out += "\n  channel: " + channel.ToString();
  }
  if (fanout.push_batches != 0 || fanout.superseded_moves != 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n  fanout: batches=%lld coalesced=%lld superseded=%lld "
                  "dirty_flushed=%lld cycles=%lld route_alloc=%lld",
                  static_cast<long long>(fanout.push_batches),
                  static_cast<long long>(fanout.coalesced_pushes),
                  static_cast<long long>(fanout.superseded_moves),
                  static_cast<long long>(fanout.dirty_slots_flushed),
                  static_cast<long long>(fanout.flush_cycles),
                  static_cast<long long>(fanout.route_alloc));
    out += buf;
  }
  if (sync.sync_rounds != 0 || sync.ae_rounds != 0 || sync.nacks != 0 ||
      sync.snapshot_retries != 0) {
    std::snprintf(buf, sizeof(buf),
                  "\n  sync: rounds=%lld cells=%lld decode_fail=%lld "
                  "fallbacks=%lld shipped=%lld removed=%lld "
                  "delta_bytes=%lld full_bytes=%lld ae=%lld repaired=%lld "
                  "owner_repairs=%lld nacks=%lld retries=%lld",
                  static_cast<long long>(sync.sync_rounds),
                  static_cast<long long>(sync.ibf_cells),
                  static_cast<long long>(sync.decode_failures),
                  static_cast<long long>(sync.fallbacks),
                  static_cast<long long>(sync.objects_shipped),
                  static_cast<long long>(sync.objects_removed),
                  static_cast<long long>(sync.delta_bytes),
                  static_cast<long long>(sync.full_bytes_estimate),
                  static_cast<long long>(sync.ae_rounds),
                  static_cast<long long>(sync.ae_objects_repaired),
                  static_cast<long long>(sync.owner_repairs),
                  static_cast<long long>(sync.nacks),
                  static_cast<long long>(sync.snapshot_retries));
    out += buf;
  }
  return out;
}

}  // namespace seve
