#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace seve {
namespace {

// 16 sub-buckets per power of two: relative error <= 1/16 ~ 6%.
constexpr int kSubBucketBits = 4;
constexpr int kSubBuckets = 1 << kSubBucketBits;
// Enough buckets for values up to 2^40 (≈ 12 days in microseconds).
constexpr size_t kNumBuckets = 41 * kSubBuckets;

int64_t BucketUpperBound(size_t index) {
  const size_t exponent = index >> kSubBucketBits;
  const size_t sub = index & (kSubBuckets - 1);
  // Buckets below kSubBuckets hold exactly one value each.
  if (exponent == 0) return static_cast<int64_t>(sub);
  const int64_t base = int64_t{1} << exponent;
  // Inclusive upper bound of the sub-bucket [base + sub*w, base + (sub+1)*w).
  return base + (static_cast<int64_t>(sub) + 1) * (base / kSubBuckets) - 1;
}

}  // namespace

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

size_t Histogram::BucketFor(int64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  const int exponent = 63 - __builtin_clzll(static_cast<uint64_t>(value));
  const int64_t base = int64_t{1} << exponent;
  const size_t sub =
      static_cast<size_t>((value - base) / (base >> kSubBucketBits));
  size_t index = (static_cast<size_t>(exponent) << kSubBucketBits) + sub;
  return std::min(index, kNumBuckets - 1);
}

void Histogram::Add(int64_t value) {
  if (value < 0) value = 0;
  if (count_ == 0 || value < min_) min_ = value;
  if (value > max_) max_ = value;
  ++count_;
  sum_ += static_cast<double>(value);
  sum_sq_ += static_cast<double>(value) * static_cast<double>(value);
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
  sum_sq_ = 0.0;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::StdDev() const {
  if (count_ == 0) return 0.0;
  const double mean = Mean();
  const double var =
      std::max(0.0, sum_sq_ / static_cast<double>(count_) - mean * mean);
  return std::sqrt(var);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target && buckets_[i] > 0) {
      return std::min(BucketUpperBound(i), max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f p50=%lld p95=%lld p99=%lld max=%lld",
                static_cast<long long>(count_), Mean(),
                static_cast<long long>(Median()),
                static_cast<long long>(P95()),
                static_cast<long long>(P99()),
                static_cast<long long>(max_));
  return buf;
}

}  // namespace seve
