#ifndef SEVE_ACTION_BLIND_WRITE_H_
#define SEVE_ACTION_BLIND_WRITE_H_

#include <vector>

#include "action/action.h"
#include "store/object.h"

namespace seve {

/// The blind write W(S, v) of Section III-C: unconditionally stores the
/// object values `v` into the object set S. RS = WS = S by convention.
///
/// The server synthesizes one at the head of every transitive-closure
/// reply (Algorithm 6) to seed the client with authoritative values for
/// the reads that no shipped action resolves.
class BlindWrite : public Action {
 public:
  /// `values` are full object copies; S is derived from their ids.
  BlindWrite(ActionId id, Tick tick, std::vector<Object> values);

  const ObjectSet& ReadSet() const override { return set_; }
  const ObjectSet& WriteSet() const override { return set_; }

  Result<ResultDigest> Apply(WorldState* state) const override;

  InterestProfile Interest() const override {
    // Blind writes are server bookkeeping; they carry no influence sphere.
    return InterestProfile{};
  }

  int64_t WireSize() const override;
  bool IsBlindWrite() const override { return true; }
  std::string ToString() const override;

  const std::vector<Object>& values() const { return values_; }

  /// Origin sentinel: blind writes are created by the server, which has
  /// no ClientId; they carry ClientId::Invalid().
  static BlindWrite FromState(ActionId id, Tick tick, const WorldState& state,
                              const ObjectSet& set);

 private:
  std::vector<Object> values_;
  ObjectSet set_;
};

}  // namespace seve

#endif  // SEVE_ACTION_BLIND_WRITE_H_
