#include "action/blind_write.h"

namespace seve {

BlindWrite::BlindWrite(ActionId id, Tick tick, std::vector<Object> values)
    : Action(id, ClientId::Invalid(), tick), values_(std::move(values)) {
  std::vector<ObjectId> ids;
  ids.reserve(values_.size());
  for (const Object& obj : values_) ids.push_back(obj.id());
  set_ = ObjectSet(std::move(ids));
}

Result<ResultDigest> BlindWrite::Apply(WorldState* state) const {
  state->ApplyObjects(values_);
  ResultDigest digest = 0x9e3779b97f4a7c15ULL;
  for (const Object& obj : values_) digest ^= obj.Hash();
  return digest;
}

int64_t BlindWrite::WireSize() const {
  int64_t size = 24;
  for (const Object& obj : values_) size += obj.WireSize();
  return size;
}

std::string BlindWrite::ToString() const {
  return "blindwrite#" + std::to_string(id().value()) + " S=" +
         set_.ToString();
}

BlindWrite BlindWrite::FromState(ActionId id, Tick tick,
                                 const WorldState& state,
                                 const ObjectSet& set) {
  return BlindWrite(id, tick, state.Extract(set));
}

}  // namespace seve
