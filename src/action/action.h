#ifndef SEVE_ACTION_ACTION_H_
#define SEVE_ACTION_ACTION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/flat_map.h"
#include "common/status.h"
#include "common/types.h"
#include "spatial/vec2.h"
#include "store/rw_set.h"
#include "store/world_state.h"

namespace seve {

/// Spatial summary of an action used by the locality bounds of Section
/// III-D/III-E and the Section-IV optimizations: a sphere of influence
/// (position + radius), an optional velocity vector for area culling, and
/// an interest-class bit for inconsequential-action elimination.
struct InterestProfile {
  Vec2 position;
  double radius = 0.0;
  Vec2 velocity;          // area-of-influence motion, Section IV-B
  uint32_t interest_class = 1;  // bitmask; Section IV-A

  /// Center of the influence sphere extrapolated `dt_seconds` forward
  /// along the velocity vector (the restructured conflict equation).
  Vec2 PositionAt(double dt_seconds) const {
    return position + velocity * dt_seconds;
  }
};

/// The digest of an action's evaluation result — the paper's `v` in
/// <a, v>. Two evaluations agree iff digests agree; this is how a client
/// detects that its optimistic evaluation diverged from the stable one.
using ResultDigest = uint64_t;

/// Per-position (pos -> digest) evaluation log kept by every replica and
/// by authoritative servers. Deliberately a seve::FlatMap, not
/// std::unordered_map: the consistency audit iterates these maps, and
/// FlatMap's iteration order is pinned by our own hash + insertion
/// sequence rather than by the standard library's bucket scheme — the
/// digest contract must not depend on which stdlib linked the binary.
using DigestMap = FlatMap<SeqNum, ResultDigest>;

/// An action: one atomic read-set/write-set transaction over the world
/// state (Section II-B / III). Concrete game logic (e.g. MoveAction in
/// Manhattan People) subclasses this.
///
/// Requirements on implementations:
///  * RS(a) ⊇ WS(a) (asserted by protocol code).
///  * Apply() is deterministic given the state restricted to RS(a) —
///    every replica that evaluates the action over consistent inputs
///    computes the same writes and the same ResultDigest.
///  * On a fatal conflict, Apply() leaves the state untouched and returns
///    Status::Conflict (the Bayou-style "behave as a no-op" abort).
class Action {
 public:
  Action(ActionId id, ClientId origin, Tick tick)
      : id_(id), origin_(origin), tick_(tick) {}
  virtual ~Action() = default;

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ActionId id() const { return id_; }
  ClientId origin() const { return origin_; }
  Tick tick() const { return tick_; }

  /// Declared read set; includes the write set.
  virtual const ObjectSet& ReadSet() const = 0;
  /// Declared write set.
  virtual const ObjectSet& WriteSet() const = 0;

  /// Executes the action against `state`, returning the result digest.
  virtual Result<ResultDigest> Apply(WorldState* state) const = 0;

  /// Spatial/interest summary for the First Bound and Information Bound
  /// models.
  virtual InterestProfile Interest() const = 0;

  /// Serialized size in bytes for traffic accounting.
  virtual int64_t WireSize() const;

  /// True for server-synthesized blind writes W(S, v) (Algorithm 4 treats
  /// them like foreign actions; they never enter conflict analysis as
  /// reads beyond their own set).
  virtual bool IsBlindWrite() const { return false; }

  /// True for avatar-movement actions, whose still-queued predecessor
  /// from the same origin may be superseded by a newer one (the
  /// updatable-queue optimisation; see SeveOptions::move_supersession).
  /// Actions with cumulative effects must keep the default false.
  virtual bool IsMovement() const { return false; }

  virtual std::string ToString() const;

 private:
  ActionId id_;
  ClientId origin_;
  Tick tick_;
};

using ActionPtr = std::shared_ptr<const Action>;

/// An action plus its position in the server's serialization order — the
/// unit shipped from server to clients.
struct OrderedAction {
  SeqNum pos = kInvalidSeq;
  ActionPtr action;
};

}  // namespace seve

#endif  // SEVE_ACTION_ACTION_H_
