#include "action/action.h"

namespace seve {

int64_t Action::WireSize() const {
  // Header (ids, tick) + read/write set ids. Concrete actions add payload.
  return 24 + static_cast<int64_t>(ReadSet().size() + WriteSet().size()) * 8;
}

std::string Action::ToString() const {
  return "action#" + std::to_string(id_.value()) + "@c" +
         std::to_string(origin_.value()) + " RS=" + ReadSet().ToString() +
         " WS=" + WriteSet().ToString();
}

}  // namespace seve
