#include "baseline/broadcast.h"

#include <memory>

#include "protocol/pending_queue.h"

namespace seve {

BroadcastServer::BroadcastServer(NodeId node, EventLoop* loop,
                                 const CostModel& cost)
    : Node(node, loop), cost_(cost) {}

void BroadcastServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = node;
  client_order_.push_back(client);
}

void BroadcastServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kSubmitAction) return;
  const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
  ActionPtr action = submit.action;
  const Micros cpu =
      cost_.forward_us * static_cast<Micros>(clients_.size());
  SubmitWork(cpu, [this, action = std::move(action)]() {
    const SeqNum pos = next_pos_++;
    ++stats_.actions_submitted;
    auto body = std::make_shared<DeliverActionsBody>();
    body->actions.push_back(OrderedAction{pos, action});
    for (ClientId client : client_order_) {
      Send(clients_.at(client), body->WireSize(), body);
    }
  });
}

BroadcastClient::BroadcastClient(NodeId node, EventLoop* loop,
                                 ClientId client, NodeId server,
                                 WorldState initial, ActionCostFn cost_fn)
    : Node(node, loop),
      client_(client),
      server_(server),
      state_(std::move(initial)),
      cost_fn_(std::move(cost_fn)) {}

void BroadcastClient::SubmitLocalAction(ActionPtr action) {
  in_flight_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  auto body = std::make_shared<SubmitActionBody>(action);
  Send(server_, body->WireSize(), body);
}

void BroadcastClient::OnMessage(const Message& msg) {
  if (msg.body->kind() != kDeliverActions) return;
  const auto& deliver = static_cast<const DeliverActionsBody&>(*msg.body);
  for (const OrderedAction& rec : deliver.actions) {
    const Micros cost = cost_fn_(*rec.action, state_);
    SubmitWork(cost, [this, rec]() {
      eval_digests_[rec.pos] = EvaluateAction(*rec.action, &state_);
      ++stats_.actions_evaluated;
      auto it = in_flight_.find(rec.action->id());
      if (it != in_flight_.end() && rec.action->origin() == client_) {
        stats_.response_time_us.Add(loop()->now() - it->second);
        in_flight_.erase(it);
      }
    });
  }
}

}  // namespace seve
