#include "baseline/ring.h"

#include <algorithm>
#include <memory>

#include "protocol/pending_queue.h"

namespace seve {

RingServer::RingServer(NodeId node, EventLoop* loop, const CostModel& cost,
                       double visibility, const AABB& world_bounds)
    : Node(node, loop),
      cost_(cost),
      visibility_(visibility),
      client_index_(world_bounds, std::max(1.0, visibility)) {}

void RingServer::RegisterClient(ClientId client, NodeId node,
                                Vec2 position) {
  clients_[client] = ClientRec{node, position};
  client_order_.push_back(client);
  (void)client_index_.Insert(client.value(),
                             AABB::FromCircle(position, 0.0));
}

void RingServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kSubmitAction) return;
  const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
  ActionPtr action = submit.action;

  // Track the origin's avatar position.
  const InterestProfile profile = action->Interest();
  auto origin_it = clients_.find(action->origin());
  if (origin_it != clients_.end()) {
    origin_it->second.position = profile.position;
    (void)client_index_.Move(action->origin().value(),
                             AABB::FromCircle(profile.position, 0.0));
  }

  // Visibility filter over the client index (same spatial machinery as
  // SEVE's Equation-1 routing, but with the avatar-visibility radius and
  // no transitive-closure analysis afterwards).
  std::vector<NodeId> recipients;
  int candidates = 0;
  client_index_.ForEachInCircle(
      profile.position, visibility_, [&](uint64_t key) {
        ++candidates;
        const ClientId client(key);
        const auto it = clients_.find(client);
        if (it == clients_.end()) return;
        if (DistanceSq(it->second.position, profile.position) <=
            visibility_ * visibility_) {
          recipients.push_back(it->second.node);
        }
      });
  if (origin_it != clients_.end() &&
      std::find(recipients.begin(), recipients.end(),
                origin_it->second.node) == recipients.end()) {
    recipients.push_back(origin_it->second.node);
  }

  const Micros cpu =
      cost_.serialize_us +
      static_cast<Micros>(cost_.interest_test_us *
                          static_cast<double>(std::max(candidates, 1)));
  SubmitWork(cpu, [this, action = std::move(action),
                   recipients = std::move(recipients)]() {
    const SeqNum pos = next_pos_++;
    ++stats_.actions_submitted;
    auto body = std::make_shared<DeliverActionsBody>();
    body->actions.push_back(OrderedAction{pos, action});
    for (NodeId dst : recipients) {
      Send(dst, body->WireSize(), body);
    }
  });
}

RingClient::RingClient(NodeId node, EventLoop* loop, ClientId client,
                       NodeId server, WorldState initial,
                       ActionCostFn cost_fn)
    : Node(node, loop),
      client_(client),
      server_(server),
      state_(std::move(initial)),
      cost_fn_(std::move(cost_fn)) {}

void RingClient::SubmitLocalAction(ActionPtr action) {
  in_flight_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  auto body = std::make_shared<SubmitActionBody>(action);
  Send(server_, body->WireSize(), body);
}

void RingClient::OnMessage(const Message& msg) {
  if (msg.body->kind() != kDeliverActions) return;
  const auto& deliver = static_cast<const DeliverActionsBody&>(*msg.body);
  for (const OrderedAction& rec : deliver.actions) {
    const Micros cost = cost_fn_(*rec.action, state_);
    SubmitWork(cost, [this, rec]() {
      eval_digests_[rec.pos] = EvaluateAction(*rec.action, &state_);
      ++stats_.actions_evaluated;
      auto it = in_flight_.find(rec.action->id());
      if (it != in_flight_.end() && rec.action->origin() == client_) {
        stats_.response_time_us.Add(loop()->now() - it->second);
        in_flight_.erase(it);
      }
    });
  }
}

}  // namespace seve
