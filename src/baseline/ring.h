#ifndef SEVE_BASELINE_RING_H_
#define SEVE_BASELINE_RING_H_

#include <unordered_map>
#include <vector>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "spatial/grid_index.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// Baseline "RING-like": visibility-filtered forwarding (Funkhouser's
/// RING, Section II-B "the server forwards updates only to users who can
/// 'see' the entity"). The server serializes actions and relays each one
/// only to clients whose avatar lies within `visibility` of the action —
/// a syntactic area-of-interest restriction with NO transitive-closure
/// analysis, no blind writes and no completion protocol.
///
/// This is the architecture whose inconsistency Section III-B dissects
/// (Figures 2-3): causally related actions outside the visible range are
/// silently missing, so client replicas diverge. The integration test
/// ring_inconsistency_test demonstrates exactly that, and Figure 10
/// measures SEVE's closure overhead against this baseline.
class RingServer : public Node {
 public:
  RingServer(NodeId node, EventLoop* loop, const CostModel& cost,
             double visibility, const AABB& world_bounds);

  void RegisterClient(ClientId client, NodeId node, Vec2 position);

  ProtocolStats& stats() { return stats_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  struct ClientRec {
    NodeId node;
    Vec2 position;
  };

  CostModel cost_;
  double visibility_;
  SeqNum next_pos_ = 0;
  std::unordered_map<ClientId, ClientRec> clients_;
  std::vector<ClientId> client_order_;
  GridIndex client_index_;
  ProtocolStats stats_;
};

/// RING client: one replica; applies every forwarded action at game-logic
/// cost. Response time = submission until the echo is processed locally.
class RingClient : public Node {
 public:
  RingClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
             WorldState initial, ActionCostFn cost_fn);

  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }
  const DigestMap& eval_digests() const {
    return eval_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  ClientId client_;
  NodeId server_;
  WorldState state_;
  ActionCostFn cost_fn_;
  ProtocolStats stats_;
  std::unordered_map<ActionId, VirtualTime> in_flight_;
  DigestMap eval_digests_;
};

}  // namespace seve

#endif  // SEVE_BASELINE_RING_H_
