#ifndef SEVE_BASELINE_CENTRAL_H_
#define SEVE_BASELINE_CENTRAL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// Baseline "Central": the server-centric architecture of current MMOs
/// (Second Life, World of Warcraft). Clients are thin — they send input
/// commands and render state updates; ALL game logic executes on the
/// central server, which is why scalability collapses once
/// clients × per-action-cost exceeds the submission period (Figure 6).
///
/// Message body reused: SubmitActionBody carries the input command (the
/// action the client wants performed); the server evaluates it.
class CentralServer : public Node {
 public:
  CentralServer(NodeId node, EventLoop* loop, WorldState initial,
                const CostModel& cost, ActionCostFn action_cost,
                double visibility);

  void RegisterClient(ClientId client, NodeId node);

  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const DigestMap& committed_digests() const {
    return committed_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  struct ClientRec {
    NodeId node;
    Vec2 position;  // tracked from submitted inputs
    bool seen = false;
  };

  void Execute(ActionPtr action);

  WorldState state_;
  CostModel cost_;
  ActionCostFn action_cost_;
  double visibility_;
  SeqNum next_pos_ = 0;
  std::unordered_map<ClientId, ClientRec> clients_;
  std::vector<ClientId> client_order_;
  ProtocolStats stats_;
  DigestMap committed_digests_;
};

/// Thin client for the Central baseline: submits inputs, installs state
/// updates, measures input-to-ack response time.
class CentralClient : public Node {
 public:
  CentralClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
                WorldState initial, Micros install_us);

  /// Sends the input command; response time runs until the ack returns.
  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  /// The client's rendered view (kept fresh by server updates).
  const WorldState& view() const { return view_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  ClientId client_;
  NodeId server_;
  WorldState view_;
  Micros install_us_;
  ProtocolStats stats_;
  std::unordered_map<ActionId, VirtualTime> in_flight_;
};

/// Server -> clients: object values after a state change (also used by
/// the Broadcast and RING baselines for acks).
struct ObjectUpdateBody : MessageBody {
  SeqNum pos = kInvalidSeq;
  ActionId action_id;
  std::vector<Object> objects;

  int kind() const override { return kObjectUpdate; }
  int64_t WireSize() const {
    int64_t size = 32;
    for (const Object& obj : objects) size += obj.WireSize();
    return size;
  }
};

}  // namespace seve

#endif  // SEVE_BASELINE_CENTRAL_H_
