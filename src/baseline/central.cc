#include "baseline/central.h"

#include "protocol/pending_queue.h"

namespace seve {

CentralServer::CentralServer(NodeId node, EventLoop* loop,
                             WorldState initial, const CostModel& cost,
                             ActionCostFn action_cost, double visibility)
    : Node(node, loop),
      state_(std::move(initial)),
      cost_(cost),
      action_cost_(std::move(action_cost)),
      visibility_(visibility) {}

void CentralServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = ClientRec{node, Vec2{}, false};
  client_order_.push_back(client);
}

void CentralServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kSubmitAction) return;
  const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
  ActionPtr action = submit.action;
  // The server pays full game-logic cost plus per-action synchronization
  // overhead; this queueing is the Figure-6 bottleneck.
  const Micros cpu = action_cost_(*action, state_) + cost_.central_overhead_us;
  SubmitWork(cpu, [this, action = std::move(action)]() { Execute(action); });
}

void CentralServer::Execute(ActionPtr action) {
  const SeqNum pos = next_pos_++;
  ++stats_.actions_submitted;
  const ResultDigest digest = EvaluateAction(*action, &state_);
  committed_digests_[pos] = digest;
  ++stats_.actions_committed;
  ++stats_.actions_evaluated;

  // Track the origin's position for visibility filtering.
  const InterestProfile profile = action->Interest();
  auto origin_it = clients_.find(action->origin());
  if (origin_it != clients_.end()) {
    origin_it->second.position = profile.position;
    origin_it->second.seen = true;
  }

  // Build the update payload: the written objects' new values.
  auto update = std::make_shared<ObjectUpdateBody>();
  update->pos = pos;
  update->action_id = action->id();
  update->objects = state_.Extract(action->WriteSet());

  // Ack to the origin; state updates to everyone who can see the change.
  for (ClientId client : client_order_) {
    const ClientRec& rec = clients_.at(client);
    if (client == action->origin()) {
      Send(rec.node, update->WireSize(), update);
      continue;
    }
    if (!rec.seen) continue;
    if (DistanceSq(rec.position, profile.position) <=
        visibility_ * visibility_) {
      Send(rec.node, update->WireSize(), update);
    }
  }
}

CentralClient::CentralClient(NodeId node, EventLoop* loop, ClientId client,
                             NodeId server, WorldState initial,
                             Micros install_us)
    : Node(node, loop),
      client_(client),
      server_(server),
      view_(std::move(initial)),
      install_us_(install_us) {}

void CentralClient::SubmitLocalAction(ActionPtr action) {
  in_flight_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  auto body = std::make_shared<SubmitActionBody>(action);
  Send(server_, body->WireSize(), body);
}

void CentralClient::OnMessage(const Message& msg) {
  if (msg.body->kind() != kObjectUpdate) return;
  const auto update =
      std::static_pointer_cast<const ObjectUpdateBody>(msg.body);
  SubmitWork(install_us_, [this, update]() {
    view_.ApplyObjects(update->objects);
    auto it = in_flight_.find(update->action_id);
    if (it != in_flight_.end()) {
      stats_.response_time_us.Add(loop()->now() - it->second);
      in_flight_.erase(it);
    }
  });
}

}  // namespace seve
