#include "baseline/zoned.h"

#include <algorithm>
#include <cmath>

#include "baseline/central.h"
#include "protocol/pending_queue.h"

namespace seve {

ZoneServer::ZoneServer(NodeId node, EventLoop* loop, int zone_index,
                       WorldState initial, const CostModel& cost,
                       ActionCostFn action_cost, double visibility)
    : Node(node, loop),
      zone_index_(zone_index),
      state_(std::move(initial)),
      cost_(cost),
      action_cost_(std::move(action_cost)),
      visibility_(visibility) {}

void ZoneServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = ClientRec{node, Vec2{}, false};
  client_order_.push_back(client);
}

void ZoneServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kSubmitAction) return;
  const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
  ActionPtr action = submit.action;
  const Micros cpu =
      action_cost_(*action, state_) + cost_.central_overhead_us;
  SubmitWork(cpu, [this, action = std::move(action)]() { Execute(action); });
}

void ZoneServer::Execute(ActionPtr action) {
  const SeqNum pos = next_pos_++;
  ++stats_.actions_submitted;
  (void)EvaluateAction(*action, &state_);
  ++stats_.actions_committed;
  ++stats_.actions_evaluated;

  const InterestProfile profile = action->Interest();
  auto origin_it = clients_.find(action->origin());
  if (origin_it != clients_.end()) {
    origin_it->second.position = profile.position;
    origin_it->second.seen = true;
  }

  auto update = std::make_shared<ObjectUpdateBody>();
  update->pos = pos;
  update->action_id = action->id();
  update->objects = state_.Extract(action->WriteSet());

  for (ClientId client : client_order_) {
    const ClientRec& rec = clients_.at(client);
    if (client == action->origin()) {
      Send(rec.node, update->WireSize(), update);
      continue;
    }
    if (!rec.seen) continue;
    if (DistanceSq(rec.position, profile.position) <=
        visibility_ * visibility_) {
      Send(rec.node, update->WireSize(), update);
    }
  }
}

ZoneMap::ZoneMap(const AABB& bounds, int zones_per_side)
    : grid_(bounds, std::max(1, zones_per_side),
            std::max(1, zones_per_side)) {}

ZonedClient::ZonedClient(NodeId node, EventLoop* loop, ClientId client,
                         const ZoneMap* zones,
                         std::vector<NodeId> zone_servers,
                         WorldState initial, Micros install_us)
    : Node(node, loop),
      client_(client),
      zones_(zones),
      zone_servers_(std::move(zone_servers)),
      view_(std::move(initial)),
      install_us_(install_us) {}

void ZonedClient::SubmitLocalAction(ActionPtr action) {
  in_flight_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  const int zone = zones_->ZoneOf(action->Interest().position);
  auto body = std::make_shared<SubmitActionBody>(action);
  Send(zone_servers_[static_cast<size_t>(zone)], body->WireSize(), body);
}

void ZonedClient::OnMessage(const Message& msg) {
  if (msg.body->kind() != kObjectUpdate) return;
  const auto update =
      std::static_pointer_cast<const ObjectUpdateBody>(msg.body);
  SubmitWork(install_us_, [this, update]() {
    view_.ApplyObjects(update->objects);
    auto it = in_flight_.find(update->action_id);
    if (it != in_flight_.end()) {
      stats_.response_time_us.Add(loop()->now() - it->second);
      in_flight_.erase(it);
    }
  });
}

}  // namespace seve
