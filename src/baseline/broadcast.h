#ifndef SEVE_BASELINE_BROADCAST_H_
#define SEVE_BASELINE_BROADCAST_H_

#include <unordered_map>
#include <vector>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// Baseline "Broadcast": the NPSNET/SIMNET model. Every client executes
/// every action in the world; the server is a pure relay that fans each
/// submitted action out to all clients. Per-client computation therefore
/// matches the Central server's (the Figure-6 knee at the same client
/// count) and total traffic is quadratic in the number of clients
/// (Figure 9).
class BroadcastServer : public Node {
 public:
  BroadcastServer(NodeId node, EventLoop* loop, const CostModel& cost);

  void RegisterClient(ClientId client, NodeId node);

  ProtocolStats& stats() { return stats_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  CostModel cost_;
  SeqNum next_pos_ = 0;
  std::unordered_map<ClientId, NodeId> clients_;
  std::vector<ClientId> client_order_;
  ProtocolStats stats_;
};

/// Broadcast client: applies every relayed action to its full local
/// replica at full game-logic cost. Response time = submission until the
/// echoed copy of the client's own action has been processed through the
/// local CPU queue (capturing client-side saturation).
class BroadcastClient : public Node {
 public:
  BroadcastClient(NodeId node, EventLoop* loop, ClientId client,
                  NodeId server, WorldState initial, ActionCostFn cost_fn);

  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }
  const DigestMap& eval_digests() const {
    return eval_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  ClientId client_;
  NodeId server_;
  WorldState state_;  // the single full replica
  ActionCostFn cost_fn_;
  ProtocolStats stats_;
  std::unordered_map<ActionId, VirtualTime> in_flight_;
  DigestMap eval_digests_;
};

}  // namespace seve

#endif  // SEVE_BASELINE_BROADCAST_H_
