#ifndef SEVE_BASELINE_ZONED_H_
#define SEVE_BASELINE_ZONED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "spatial/aabb.h"
#include "spatial/zone_grid.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// Baseline "Zoned": the geographic-partitioning technique of Section
/// II-A. The world is tiled into k x k zones, each handled by its own
/// zone server (a separate simulated machine executing full game logic,
/// like the Central baseline). Clients route each action to the zone
/// server owning the action's position and receive updates from it.
///
/// This is how commercial MMOs scale beyond one machine — and the
/// failure mode the paper calls out: "zones collapse if too many users
/// crowd into a zone all at once". A crowded zone saturates its server
/// while neighbouring zone servers idle; cross-zone interactions are
/// simply invisible (consistency is per-zone only).
class ZoneServer : public Node {
 public:
  ZoneServer(NodeId node, EventLoop* loop, int zone_index,
             WorldState initial, const CostModel& cost,
             ActionCostFn action_cost, double visibility);

  void RegisterClient(ClientId client, NodeId node);

  int zone_index() const { return zone_index_; }
  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  struct ClientRec {
    NodeId node;
    Vec2 position;
    bool seen = false;
  };

  void Execute(ActionPtr action);

  int zone_index_;
  WorldState state_;  // this zone's replica of the world
  CostModel cost_;
  ActionCostFn action_cost_;
  double visibility_;
  SeqNum next_pos_ = 0;
  std::unordered_map<ClientId, ClientRec> clients_;
  std::vector<ClientId> client_order_;
  ProtocolStats stats_;
};

/// The zone map: tiles the world into a k x k grid and owns the zone
/// servers. Provides the client-side routing rule (position -> zone).
/// The grid math is shared with the sharded tier's ShardMap through
/// spatial/zone_grid.h, so both route by exactly one clamping rule.
class ZoneMap {
 public:
  ZoneMap(const AABB& bounds, int zones_per_side);

  int zones_per_side() const { return grid_.cols(); }
  int zone_count() const { return grid_.cell_count(); }

  /// Zone index owning `position`.
  int ZoneOf(Vec2 position) const { return grid_.CellOf(position); }

 private:
  ZoneGrid grid_;
};

/// Zoned client: routes each action to the owning zone server by the
/// action's position; applies updates from whichever zone servers it
/// hears from. Response = input -> ack from the zone server.
class ZonedClient : public Node {
 public:
  ZonedClient(NodeId node, EventLoop* loop, ClientId client,
              const ZoneMap* zones, std::vector<NodeId> zone_servers,
              WorldState initial, Micros install_us);

  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& view() const { return view_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  ClientId client_;
  const ZoneMap* zones_;
  std::vector<NodeId> zone_servers_;
  WorldState view_;
  Micros install_us_;
  ProtocolStats stats_;
  std::unordered_map<ActionId, VirtualTime> in_flight_;
};

}  // namespace seve

#endif  // SEVE_BASELINE_ZONED_H_
