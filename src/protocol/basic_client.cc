#include "protocol/basic_client.h"

#include <cassert>
#include <utility>

namespace seve {

BasicClient::BasicClient(NodeId node, EventLoop* loop, ClientId client,
                         NodeId server, WorldState initial,
                         ActionCostFn cost_fn, Micros install_us)
    : Node(node, loop),
      client_(client),
      server_(server),
      optimistic_(initial),
      stable_(std::move(initial)),
      cost_fn_(std::move(cost_fn)),
      install_us_(install_us) {}

void BasicClient::SubmitLocalAction(ActionPtr action) {
  assert(action->ReadSet().Covers(action->WriteSet()) &&
         "protocol invariant RS(a) ⊇ WS(a) violated");
  const Micros cost = cost_fn_(*action, optimistic_);
  const VirtualTime submitted_at = loop()->now();
  SubmitWork(cost, [this, action = std::move(action), submitted_at]() {
    const ResultDigest digest = EvaluateAction(*action, &optimistic_);
    pending_.Push(action, digest, submitted_at);
    ++stats_.actions_submitted;
    auto body = std::make_shared<SubmitActionBody>(action);
    Send(server_, body->WireSize(), body);
  });
}

void BasicClient::OnMessage(const Message& msg) {
  if (msg.body->kind() != kDeliverActions) return;
  const auto& deliver = static_cast<const DeliverActionsBody&>(*msg.body);
  for (const OrderedAction& rec : deliver.actions) {
    const Micros cost = rec.action->IsBlindWrite()
                            ? install_us_
                            : cost_fn_(*rec.action, stable_);
    SubmitWork(cost, [this, rec]() { ApplyOrdered(rec); });
  }
}

void BasicClient::ApplyOrdered(const OrderedAction& rec) {
  const bool own = rec.action->origin() == client_ && !pending_.empty() &&
                   pending_.front().action->id() == rec.action->id();
  if (own) {
    HandleOwnEcho(rec);
  } else {
    HandleForeign(rec);
  }
}

void BasicClient::HandleForeign(const OrderedAction& rec) {
  // Apply b to ζCS; propagate writes to ζCO only for objects that are not
  // awaiting permanent values from the server (x ∉ WS(Q)).
  eval_digests_[rec.pos] = EvaluateAction(*rec.action, &stable_);
  ++stats_.actions_evaluated;
  const ObjectSet propagate =
      ObjectSet::Difference(rec.action->WriteSet(), pending_.write_set());
  optimistic_.CopyObjectsFrom(stable_, propagate);
}

void BasicClient::HandleOwnEcho(const OrderedAction& rec) {
  const PendingQueue::Entry entry = pending_.front();
  const ResultDigest stable_digest = EvaluateAction(*rec.action, &stable_);
  eval_digests_[rec.pos] = stable_digest;
  ++stats_.actions_evaluated;
  stats_.response_time_us.Add(loop()->now() - entry.submitted_at);

  pending_.PopFront();
  if (stable_digest == entry.digest) {
    // Optimistic evaluation confirmed; nothing else to do.
    return;
  }
  // Divergence: fold the stable values of this action's writes into ζCO,
  // then replay the remaining queue (Algorithm 3).
  ++stats_.actions_reconciled;
  optimistic_.CopyObjectsFrom(stable_, rec.action->WriteSet());
  pending_.Reconcile(&optimistic_, stable_);
}

}  // namespace seve
