#ifndef SEVE_PROTOCOL_INTEREST_H_
#define SEVE_PROTOCOL_INTEREST_H_

#include "action/action.h"
#include "common/types.h"

namespace seve {

/// The locality bounds of Sections III-D/III-E and the Section-IV
/// optimizations, shared by the First Bound push and the Information
/// Bound chain breaking.
///
/// Equation 1:  ||p̄A − p̄C|| ≤ 2s(1+ω)RTT + rC + rA
/// Equation 2:  ||p̄A − p̄C|| ≤ 2s(1+ω)RTT + rC + rA + threshold
/// Area culling (Section IV-B):
///   ||p̄M + v̄M(tM − tC) − p̄C|| ≤ 2s(1+ω)RTT + rC
class InterestModel {
 public:
  /// `max_speed` is the paper's s (world units per second); `rtt_us` the
  /// client-server round-trip time; `omega` the push-period fraction.
  InterestModel(double max_speed, Micros rtt_us, double omega,
                bool velocity_culling = false, bool interest_classes = false);

  /// The reach term 2s(1+ω)RTT in world units.
  double ReachTerm() const { return reach_; }

  /// Equation 1: can action A (profile `action`, created at `action_time`)
  /// affect any future action of the client whose profile is `client`
  /// (last updated at `client_time`) within (1+ω)RTT?
  bool MayAffect(const InterestProfile& action, VirtualTime action_time,
                 const InterestProfile& client,
                 VirtualTime client_time) const;

  /// Equation 1 distance bound for the given radii.
  double Bound(double action_radius, double client_radius) const {
    return reach_ + action_radius + client_radius;
  }

  /// Equation 2 bound (adds the Information Bound threshold).
  double CombinedBound(double action_radius, double client_radius,
                       double threshold) const {
    return Bound(action_radius, client_radius) + threshold;
  }

  double omega() const { return omega_; }
  Micros rtt_us() const { return rtt_us_; }
  double max_speed() const { return max_speed_; }
  bool velocity_culling() const { return velocity_culling_; }

 private:
  double max_speed_;
  Micros rtt_us_;
  double omega_;
  bool velocity_culling_;
  bool interest_classes_;
  double reach_;  // 2s(1+omega)RTT, precomputed
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_INTEREST_H_
