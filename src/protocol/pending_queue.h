#ifndef SEVE_PROTOCOL_PENDING_QUEUE_H_
#define SEVE_PROTOCOL_PENDING_QUEUE_H_

#include <deque>

#include "action/action.h"
#include "common/status.h"
#include "store/rw_set.h"
#include "store/world_state.h"

namespace seve {

/// Digest reported when an action's evaluation aborts with a conflict
/// (the Bayou-style no-op). Both replicas conflicting is agreement.
inline constexpr ResultDigest kConflictDigest = 0xdead0badc0ffee00ULL;

/// Evaluates `action` against `state`, folding a Conflict abort into the
/// sentinel digest so results are always comparable across replicas.
ResultDigest EvaluateAction(const Action& action, WorldState* state);

/// The client-side queue Q = [<a1,v1>, ..., <ak,vk>] of Algorithms 1 and
/// 4: locally generated actions not yet received back from the server,
/// paired with their optimistic evaluation results.
class PendingQueue {
 public:
  struct Entry {
    ActionPtr action;
    ResultDigest digest = 0;       // the optimistic result v_i
    VirtualTime submitted_at = 0;  // for response-time measurement
  };

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }
  const Entry& front() const { return entries_.front(); }
  const std::deque<Entry>& entries() const { return entries_; }

  /// Appends <a, v> (Algorithm 1 step 2).
  void Push(ActionPtr action, ResultDigest digest, VirtualTime submitted_at);

  /// Removes the head (optimistic evaluation confirmed).
  void PopFront();

  /// Removes the entry with the given action id (used when the server
  /// drops an action under the Information Bound Model). Fails if absent.
  Status RemoveById(ActionId id);

  /// True if the entry with this id is present.
  bool ContainsId(ActionId id) const;

  /// WS(Q): the union of the write sets of all queued actions. Used by
  /// the client-side rule "apply writes of foreign actions to ζCO iff the
  /// object is not awaiting a permanent value from the server".
  const ObjectSet& write_set() const { return write_set_; }

  /// Algorithm 3: reconciles the optimistic state with the stable state —
  ///   ζCO(WS(Q)) ← ζCS(WS(Q)); then re-apply all queued actions to ζCO,
  /// refreshing their optimistic digests.
  void Reconcile(WorldState* optimistic, const WorldState& stable);

 private:
  void RebuildWriteSet();

  std::deque<Entry> entries_;
  ObjectSet write_set_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_PENDING_QUEUE_H_
