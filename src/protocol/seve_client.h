#ifndef SEVE_PROTOCOL_SEVE_CLIENT_H_
#define SEVE_PROTOCOL_SEVE_CLIENT_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "protocol/options.h"
#include "protocol/pending_queue.h"
#include "store/world_state.h"

namespace seve {

/// Client side of the Incomplete World / First Bound / Information Bound
/// protocols (Algorithm 4).
///
/// Differences from the basic client:
///  * receives only the subset of actions that (transitively) affect it,
///    with server-synthesized blind writes W(S, ζS(S)) seeding unresolved
///    reads;
///  * sends a completion message <a_i, u> with the written values after
///    the stable evaluation of its own actions (Algorithm 4 step 5) — or
///    of every action when failure tolerance is on;
///  * handles drop notices from the Information Bound Model by rolling
///    back the optimistic evaluation of the dropped action;
///  * guards installs with per-object last-writer positions so a
///    transitively included older action cannot clobber newer state.
class SeveClient : public Node {
 public:
  SeveClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
             WorldState initial, ActionCostFn cost_fn, Micros install_us,
             const SeveOptions& options);

  /// Algorithm 4 step 2: optimistic evaluation + submission.
  /// Silently ignored while the client is failed or still rejoining.
  void SubmitLocalAction(ActionPtr action);

  /// Crash: all deliveries and work are dropped until Rejoin().
  void Fail() { set_failed(true); }

  /// Recovery (Section III-C): discards all pre-crash replica state,
  /// resets the reliable-channel conversation with the server, and asks
  /// for a ζS snapshot. Protocol traffic is ignored until the final
  /// SnapshotChunk arrives, after which the client converges to the same
  /// digests as never-failed clients.
  ///
  /// With options.delta_sync the stable replica is kept and reconciled
  /// via the IBF handshake instead (DESIGN.md §15): the server ships only
  /// the symmetric difference plus the live tail, or falls back to the
  /// full stream when the filter fails to peel. Either way the client
  /// ends bit-identical to the full-snapshot path.
  void Rejoin();
  bool rejoining() const { return rejoining_; }
  /// True between Rehome and RehomeDone: submissions are buffered so the
  /// destination shard never sees this client before its adoption.
  bool rehoming() const { return rehoming_; }
  /// Current home server (changes when the sharded tier rehomes the
  /// client's avatar).
  NodeId server() const { return server_; }

  /// Arms the periodic background reconciliation exchange against the
  /// home server (options.anti_entropy_period_us; requires delta_sync).
  /// Runs until StopSync().
  void StartAntiEntropy();
  /// Disarms anti-entropy and the catch-up retry timer so the event loop
  /// can drain (runner teardown).
  void StopSync();

  ClientId client_id() const { return client_; }
  const WorldState& stable() const { return stable_; }
  const WorldState& optimistic() const { return optimistic_; }
  size_t pending_count() const { return pending_.size(); }
  SeqNum last_commit_notice() const { return last_commit_notice_; }
  int64_t drops_observed() const { return drops_observed_; }

  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }

  const DigestMap& eval_digests() const {
    return eval_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  void ApplyOrdered(const OrderedAction& rec);
  void HandleForeign(const OrderedAction& rec);
  void HandleOwnEcho(const OrderedAction& rec);
  void HandleDropNotice(const DropNoticeBody& notice);
  void HandleSnapshotChunk(const SnapshotChunkBody& chunk);
  void HandleRehome(const RehomeBody& rehome);
  void HandleRehomeDone(const RehomeDoneBody& done);
  /// Step 2 of the delta handshake: build an IBF of the stable replica at
  /// the server-requested size and send it back.
  void HandleSyncIBFRequest(const SyncIBFRequestBody& request);
  /// Applies a SyncDelta: the rejoin arm patches ζCS to the server's
  /// committed prefix and finishes exactly like the final SnapshotChunk;
  /// the anti-entropy arm upserts behind the last-writer guards.
  void HandleSyncDelta(const SyncDeltaBody& delta);
  /// Sends the catch-up request for the current mode (SyncRequest with
  /// delta_sync, SnapshotRequest without).
  void SendCatchupRequest();
  void SendSyncRequest(uint8_t mode);
  /// Re-requests catch-up if still rejoining after snapshot_retry_us
  /// (satellite fix: a dropped request or an abandoned transfer otherwise
  /// strands the client in rejoining_ forever).
  void ArmCatchupRetry();
  /// Shared tail-replay + optimistic re-seed for the final catch-up chunk
  /// (snapshot and delta paths).
  void FinishCatchup(const std::vector<OrderedAction>& tail);

  struct ApplyOutcome {
    ResultDigest digest = 0;
    /// True when some read input was newer than the action's serial
    /// position (an out-of-order transitive inclusion): the evaluation
    /// is transient-only — it must not be completed to the server nor
    /// audited against the serial execution.
    bool out_of_order = false;
    /// True when this position was already applied here (a resync
    /// re-delivery): the whole application is a no-op.
    bool duplicate = false;
  };
  /// Applies an action to ζCS with the last-writer guard. `force_eval`
  /// evaluates even over non-serial inputs (own echoes must always
  /// produce a result).
  ApplyOutcome GuardedApply(const OrderedAction& rec,
                            bool force_eval = false);
  void SendCompletion(const OrderedAction& rec, ResultDigest digest,
                      bool out_of_order = false);

  ClientId client_;
  NodeId server_;
  WorldState optimistic_;  // ζCO
  WorldState stable_;      // ζCS
  PendingQueue pending_;   // Q
  ActionCostFn cost_fn_;
  Micros install_us_;
  SeveOptions options_;
  ProtocolStats stats_;
  DigestMap eval_digests_;
  // Per-object position of the newest action applied to ζCS.
  FlatMap<ObjectId, SeqNum> last_writer_;
  // Positions of non-blind actions applied to ζCS; duplicate deliveries
  // must not double-apply (non-idempotent actions).
  // Membership-only (never iterated), so bucket order is unobservable.
  // seve-lint: allow(det-unordered-container): membership test only
  std::unordered_set<SeqNum> applied_;
  // Objects whose current ζCS value may not equal the serial value at
  // their last_writer position (produced by an out-of-order evaluation).
  // Reads of tainted objects taint the reader's writes; a clean in-order
  // evaluation or an authoritative blind write heals the object.
  ObjectSet tainted_;
  SeqNum last_commit_notice_ = kInvalidSeq;
  int64_t drops_observed_ = 0;
  /// True between Rejoin() and the final SnapshotChunk: protocol traffic
  /// is ignored (it predates the snapshot) and submissions are refused.
  bool rejoining_ = false;
  /// True while a delta (IBF) rejoin is in flight: the stable replica was
  /// kept for reconciliation. Any SnapshotChunk arriving in this state is
  /// the server's deterministic decode-failure fallback — wipe and run
  /// the full path.
  bool delta_rejoin_ = false;
  /// Retry bookkeeping: the incarnation invalidates timers armed for an
  /// earlier rejoin attempt; retries_used_ caps the re-requests so an
  /// unregistered client cannot spin forever.
  int64_t retry_incarnation_ = 0;
  int retries_used_ = 0;
  /// Anti-entropy tick armed (StartAntiEntropy .. StopSync).
  bool ae_running_ = false;
  /// True between Rehome and RehomeDone (DESIGN.md §14): the avatar's
  /// record is in flight between shards. Fresh submissions are
  /// evaluated and queued locally but their bodies are parked in
  /// rehome_buffer_ — the destination appends every submission to its
  /// queue before checking registration, so a pre-adoption arrival
  /// would stall its frontier forever.
  bool rehoming_ = false;
  std::vector<std::shared_ptr<SubmitActionBody>> rehome_buffer_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_SEVE_CLIENT_H_
