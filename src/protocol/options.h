#ifndef SEVE_PROTOCOL_OPTIONS_H_
#define SEVE_PROTOCOL_OPTIONS_H_

#include "common/types.h"

namespace seve {

/// Configuration of the SEVE protocol stack. The defaults correspond to
/// the full protocol evaluated in Section V: Incomplete World Model +
/// First Bound proactive push + Information Bound chain breaking.
struct SeveOptions {
  /// First Bound Model (Section III-D): push conflict candidates to every
  /// client each omega*RTT instead of replying only on submission.
  bool proactive_push = true;
  /// The paper's ω, 0 < ω < 1: push period as a fraction of RTT.
  double omega = 0.5;

  /// Information Bound Model (Section III-E): drop actions whose conflict
  /// chain reaches farther than `threshold` (Algorithm 7).
  bool dropping = true;
  /// Chain-breaking distance; Table I uses 1.5 x avatar visibility.
  double threshold = 45.0;

  /// Section IV-B: use the velocity-vector form of the conflict equation.
  bool velocity_culling = false;
  /// Section IV-A: respect interest-class masks (inconsequential action
  /// elimination).
  bool interest_classes = false;

  /// Failure tolerance (Section III-C): every client sends completion
  /// messages for every action it applies, not just its own.
  bool all_client_completions = false;

  /// Crash/rejoin recovery: objects per SnapshotChunk when the server
  /// streams ζS to a rejoining client.
  int snapshot_chunk_objects = 64;

  /// Updatable-queue optimisation: a newer MoveAction from the same
  /// origin invalidates its still-queued predecessor, provided the
  /// predecessor was never sent to any client (so nothing has to be
  /// recalled). The origin is told via the Information Bound drop path.
  /// Off by default — with it off the data path is bit-identical to the
  /// pre-supersession protocol.
  bool move_supersession = false;

  /// Sharded tier only (SeveShardServer): fan committed escalated-closure
  /// results out through First-Bound style coalesced push batches (blind
  /// writes of the stable values) to the interested clients of the owning
  /// shard, instead of leaving every non-origin client to pull them. The
  /// single-server tier ignores the flag (its First Bound push already
  /// covers this). Pure replica freshening: pushes are authoritative
  /// blind writes, so server state and committed digests are unchanged.
  bool escalated_push = true;

  /// Benchmarking compat mode: run the push flush as the pre-dirty-list
  /// full scan over every registered client. Message contents, costs and
  /// digests are identical to the dirty-list flush; only wall-clock
  /// differs. Used by bench_server_capacity for side-by-side kernels.
  bool legacy_flush_scan = false;

  /// Accumulate real wall-clock nanoseconds around the flush+route
  /// kernels (SeveServer::flush_route_wall_ns). Never enters simulated
  /// time, stats or digests.
  bool kernel_timing = false;

  /// The simulation tick τ; Algorithm 7 runs once per tick.
  Micros tick_us = 100 * 1000;

  /// How often the server emits CommitNotice GC hints (0 = never).
  Micros commit_notice_period_us = 1000 * 1000;

  // --- Delta sync (DESIGN.md §15) -----------------------------------------

  /// Rejoin via IBF set reconciliation instead of a full snapshot: the
  /// client keeps its pre-crash stable state and the server ships only
  /// the symmetric difference plus the live tail, falling back to the
  /// full SnapshotChunk stream when the filter fails to peel. Off by
  /// default — with it off the data path is bit-identical to the
  /// full-snapshot protocol.
  bool delta_sync = false;

  /// IBF sizing: floor, safety factor over the strata estimate, and an
  /// optional hard cap (a deliberately tiny cap forces the deterministic
  /// decode-failure fallback in tests).
  int64_t sync_min_cells = 64;
  double sync_alpha = 4.0;
  int64_t sync_max_cells = 0;  // 0 = uncapped

  /// Background anti-entropy: clients run the same reconciliation
  /// exchange against their home server every period, repairing replica
  /// divergence the Incomplete World Model leaves behind by design
  /// (0 = off). Requires delta_sync.
  Micros anti_entropy_period_us = 0;

  /// Shard-pair anti-entropy: each shard reconciles its local ownership
  /// view against its ring successor every period (0 = off). Repairs the
  /// third-party staleness that ownership migration leaves behind.
  Micros shard_anti_entropy_period_us = 0;

  /// Client catch-up retry: while still rejoining after this long, the
  /// client re-sends its catch-up request (0 = never — the seed
  /// behaviour, which can strand a client whose request was dropped or
  /// whose transfer was abandoned by the reliable channel).
  Micros snapshot_retry_us = 0;
  /// Retry cap, so an unregistered client cannot spin forever.
  int snapshot_retry_limit = 5;

  /// Catch-up pacing: at most this many snapshot/delta chunks enter the
  /// send path per tick (0 = the legacy single-burst submit). Bounds the
  /// per-tick work spike a 100k-object snapshot otherwise causes.
  int snapshot_chunks_per_tick = 0;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_OPTIONS_H_
