#include "protocol/seve_client.h"

#include <cassert>
#include <memory>
#include <utility>
#include <vector>

#include "net/channel.h"
#include "sync/reconcile.h"

namespace seve {

SeveClient::SeveClient(NodeId node, EventLoop* loop, ClientId client,
                       NodeId server, WorldState initial,
                       ActionCostFn cost_fn, Micros install_us,
                       const SeveOptions& options)
    : Node(node, loop),
      client_(client),
      server_(server),
      optimistic_(initial),
      stable_(std::move(initial)),
      cost_fn_(std::move(cost_fn)),
      install_us_(install_us),
      options_(options) {}

void SeveClient::SubmitLocalAction(ActionPtr action) {
  if (failed() || rejoining_) return;
  assert(action->ReadSet().Covers(action->WriteSet()) &&
         "protocol invariant RS(a) ⊇ WS(a) violated");
  const Micros cost = cost_fn_(*action, optimistic_);
  const VirtualTime submitted_at = loop()->now();
  SubmitWork(cost, [this, action = std::move(action), submitted_at]() {
    const ResultDigest digest = EvaluateAction(*action, &optimistic_);
    pending_.Push(action, digest, submitted_at);
    ++stats_.actions_submitted;
    auto body = std::make_shared<SubmitActionBody>(action);
    if (rehoming_) {
      // Mid-handoff (DESIGN.md §14): park the body until RehomeDone.
      // The optimistic evaluation and the pending entry above proceed
      // normally — only the wire send waits for the new home.
      // seve-lint: allow(hot-vector-realloc): rehome window only, cold
      rehome_buffer_.push_back(std::move(body));
    } else {
      Send(server_, body->WireSize(), body);
    }
  });
}

void SeveClient::Rejoin() {
  set_failed(false);
  rejoining_ = true;
  delta_rejoin_ = options_.delta_sync;
  // Everything replicated before the crash is untrusted: the snapshot
  // rebuilds ζCS from scratch and ζCO is re-seeded from it afterwards.
  // The delta path keeps ζCS — it is exactly what the IBF exchange
  // reconciles against the server's committed prefix — but clears every
  // piece of bookkeeping derived from the dead incarnation.
  if (!delta_rejoin_) stable_ = WorldState{};
  optimistic_ = WorldState{};
  pending_ = PendingQueue{};
  last_writer_.Clear();
  applied_.clear();
  tainted_ = ObjectSet{};
  // A crash mid-rehome: the buffered bodies died with the incarnation
  // (their pending entries were just reset too). server_ already points
  // at whichever shard the client last switched to — the rejoin lands
  // there, and the shards sort out the race (DESIGN.md §14 cases A/B).
  rehoming_ = false;
  rehome_buffer_.clear();
  ++stats_.rejoins;
  // Fresh channel incarnation first, so the Rejoin/catch-up-request pair
  // (and everything after) rides a stream the server can tell apart from
  // pre-crash leftovers.
  if (ReliableChannel* channel = reliable_channel()) {
    channel->ResetPeer(server_);
  }
  auto rejoin = std::make_shared<RejoinBody>();
  rejoin->client = client_;
  Send(server_, rejoin->WireSize(), rejoin);
  SendCatchupRequest();
  ++retry_incarnation_;
  retries_used_ = 0;
  ArmCatchupRetry();
}

void SeveClient::SendCatchupRequest() {
  if (delta_rejoin_) {
    SendSyncRequest(kSyncModeRejoin);
  } else {
    auto request = std::make_shared<SnapshotRequestBody>();
    request->client = client_;
    Send(server_, request->WireSize(), request);
  }
}

void SeveClient::SendSyncRequest(uint8_t mode) {
  auto request = std::make_shared<SyncRequestBody>();
  request->client = client_;
  request->mode = mode;
  request->strata = sync::BuildStrata(stable_);
  Send(server_, request->WireSize(), request);
}

void SeveClient::ArmCatchupRetry() {
  if (options_.snapshot_retry_us <= 0) return;
  if (retries_used_ >= options_.snapshot_retry_limit) return;
  const int64_t incarnation = retry_incarnation_;
  loop()->After(options_.snapshot_retry_us, [this, incarnation]() {
    // Stale arms die silently: the rejoin completed (incarnation moved
    // on), the node re-crashed, or the runner stopped sync timers.
    if (incarnation != retry_incarnation_ || !rejoining_ || failed()) {
      return;
    }
    ++retries_used_;
    ++stats_.sync.snapshot_retries;
    SendCatchupRequest();
    ArmCatchupRetry();
  });
}

void SeveClient::StartAntiEntropy() {
  if (!options_.delta_sync || options_.anti_entropy_period_us <= 0) return;
  ae_running_ = true;
  loop()->After(options_.anti_entropy_period_us, [this]() {
    if (!ae_running_) return;
    // Skip rounds while this replica is not a meaningful reconciliation
    // peer (crashed, mid-rejoin, or mid-rehome); the cadence continues.
    if (!failed() && !rejoining_ && !rehoming_) {
      SendSyncRequest(kSyncModeAe);
    }
    ae_running_ = false;
    StartAntiEntropy();
  });
}

void SeveClient::StopSync() {
  ae_running_ = false;
  ++retry_incarnation_;  // kills any armed catch-up retry
}

void SeveClient::OnMessage(const Message& msg) {
  const int kind = msg.body->kind();
  if (rejoining_ && kind != kSnapshotChunk && kind != kSyncIBFRequest &&
      kind != kSyncDelta && kind != kSyncNack) {
    // Pre-snapshot protocol traffic: superseded by the catch-up.
    return;
  }
  switch (kind) {
    case kDeliverActions: {
      const auto& deliver =
          static_cast<const DeliverActionsBody&>(*msg.body);
      stats_.closure_size.Add(
          static_cast<int64_t>(deliver.actions.size()));
      for (const OrderedAction& rec : deliver.actions) {
        const Micros cost = rec.action->IsBlindWrite()
                                ? install_us_
                                : cost_fn_(*rec.action, stable_);
        SubmitWork(cost, [this, rec]() { ApplyOrdered(rec); });
      }
      break;
    }
    case kDropNotice:
      HandleDropNotice(static_cast<const DropNoticeBody&>(*msg.body));
      break;
    case kCommitNotice: {
      const auto& notice = static_cast<const CommitNoticeBody&>(*msg.body);
      last_commit_notice_ = notice.pos;
      break;
    }
    case kSnapshotChunk:
      HandleSnapshotChunk(static_cast<const SnapshotChunkBody&>(*msg.body));
      break;
    case kSyncIBFRequest:
      HandleSyncIBFRequest(
          static_cast<const SyncIBFRequestBody&>(*msg.body));
      break;
    case kSyncDelta:
      HandleSyncDelta(static_cast<const SyncDeltaBody&>(*msg.body));
      break;
    case kSyncNack:
      // The server does not know this client (yet). Stay in rejoining_;
      // the retry timer re-requests until registration wins the race or
      // the retry cap gives up deterministically.
      break;
    case kRehome:
      // Note the rejoining_ gate above: a client mid-rejoin drops the
      // Rehome, its direct Rejoin reaches the source, and the source
      // cancels the handoff (case A) — consistent on both ends.
      HandleRehome(static_cast<const RehomeBody&>(*msg.body));
      break;
    case kRehomeDone:
      HandleRehomeDone(static_cast<const RehomeDoneBody&>(*msg.body));
      break;
    default:
      break;
  }
}

void SeveClient::HandleRehome(const RehomeBody& rehome) {
  if (rehome.client != client_) return;
  // Ack to the OLD server first: the client->source link is FIFO, so
  // every submission sent before this ack is already ahead of it in the
  // source's queue — the ack bounds the source's drain wait exactly.
  auto ack = std::make_shared<RehomeAckBody>();
  ack->client = client_;
  ack->object = rehome.object;
  ack->epoch = rehome.epoch;
  Send(server_, ack->WireSize(), ack);
  server_ = NodeId(rehome.dest_node);
  rehoming_ = true;
}

void SeveClient::HandleRehomeDone(const RehomeDoneBody& done) {
  if (done.client != client_ || !rehoming_) return;
  // The destination adopted the record; buffered submissions flow into
  // its stream, in submission order, behind the adoption entry.
  rehoming_ = false;
  for (const std::shared_ptr<SubmitActionBody>& body : rehome_buffer_) {
    Send(server_, body->WireSize(), body);
  }
  rehome_buffer_.clear();
}

void SeveClient::HandleSnapshotChunk(const SnapshotChunkBody& chunk) {
  if (!rejoining_) return;  // duplicate catch-up from a slow path
  if (delta_rejoin_) {
    // Deterministic decode-failure fallback (DESIGN.md §15): the server
    // answered the IBF with the full stream, so the kept replica buys
    // nothing — wipe it and run the classic path from here.
    stable_ = WorldState{};
    last_writer_.Clear();
    delta_rejoin_ = false;
  }
  // The snapshot is a batch of blind writes W(S, ζS(S)) at the commit
  // frontier: install directly and stamp the last-writer guards so tail
  // actions (all at higher positions) apply on top.
  for (const Object& obj : chunk.objects) {
    stable_.Upsert(obj);
    last_writer_[obj.id()] = chunk.snapshot_pos;
  }
  if (chunk.chunk + 1 != chunk.total) return;
  FinishCatchup(chunk.tail);
}

void SeveClient::FinishCatchup(const std::vector<OrderedAction>& tail) {
  // Final chunk: the replica is authoritative as of snapshot_pos. Replay
  // the live tail in order on the CPU, then re-seed the optimistic view.
  rejoining_ = false;
  delta_rejoin_ = false;
  ++retry_incarnation_;  // disarms the catch-up retry
  for (const OrderedAction& rec : tail) {
    const Micros cost = rec.action->IsBlindWrite()
                            ? install_us_
                            : cost_fn_(*rec.action, stable_);
    SubmitWork(cost, [this, rec]() { ApplyOrdered(rec); });
  }
  // CPU FIFO ordering puts this after the tail replay but before any
  // post-snapshot deliveries that arrive later.
  SubmitWork(install_us_, [this]() { optimistic_ = stable_; });
}

void SeveClient::HandleSyncIBFRequest(const SyncIBFRequestBody& request) {
  if (request.client != client_) return;
  // Rejoin rounds only make sense mid-rejoin, anti-entropy rounds only
  // outside one; a stale reply from the other state is dead traffic.
  if (request.mode == kSyncModeRejoin && !delta_rejoin_) return;
  if (request.mode == kSyncModeAe && rejoining_) return;
  auto reply = std::make_shared<SyncIBFBody>();
  reply->client = client_;
  reply->mode = request.mode;
  reply->ibf = sync::BuildIbf(stable_, request.cells);
  Send(server_, reply->WireSize(), reply);
}

void SeveClient::HandleSyncDelta(const SyncDeltaBody& delta) {
  if (delta.client != client_) return;
  if (delta.mode == kSyncModeRejoin) {
    if (!rejoining_ || !delta_rejoin_) return;
    // Patch ζCS to the server's committed prefix: shipped objects carry
    // the snapshot position as their last writer (exactly like snapshot
    // blind writes); removed ids vanish. Objects the diff did not touch
    // already equal ζS, so their absent guard (0) is equivalent to the
    // full path's snapshot_pos stamp — nothing older than snapshot_pos
    // can arrive on the fresh channel incarnation.
    for (const Object& obj : delta.objects) {
      stable_.Upsert(obj);
      last_writer_[obj.id()] = delta.snapshot_pos;
    }
    for (ObjectId id : delta.removed) {
      (void)stable_.Remove(id);
      last_writer_.Erase(id);
    }
    if (delta.chunk + 1 != delta.total) return;
    FinishCatchup(delta.tail);
    return;
  }
  // Anti-entropy repair: authoritative committed values, applied behind
  // the last-writer guards so they never roll back newer deliveries.
  if (rejoining_ || delta.mode != kSyncModeAe) return;
  ObjectSet touched;
  for (const Object& obj : delta.objects) {
    SeqNum& last = last_writer_[obj.id()];
    if (delta.snapshot_pos < last) continue;
    const Object* cur = stable_.Find(obj.id());
    if (cur == nullptr || cur->Hash() != obj.Hash()) {
      ++stats_.sync.ae_objects_repaired;
    }
    stable_.Upsert(obj);
    last = delta.snapshot_pos;
    touched.Insert(obj.id());
  }
  for (ObjectId id : delta.removed) {
    SeqNum& last = last_writer_[id];
    if (delta.snapshot_pos < last) continue;
    if (stable_.Remove(id).ok()) ++stats_.sync.ae_objects_repaired;
    last = delta.snapshot_pos;
    touched.Insert(id);
  }
  if (touched.empty()) return;
  // Refreshes flow into ζCO except where a pending optimistic write is
  // still awaiting its echo (same rule as the drop-notice refresh).
  touched.SubtractWith(pending_.write_set());
  optimistic_.CopyObjectsFrom(stable_, touched);
}

void SeveClient::ApplyOrdered(const OrderedAction& rec) {
  const bool own = rec.action->origin() == client_ &&
                   pending_.ContainsId(rec.action->id());
  if (own) {
    HandleOwnEcho(rec);
  } else {
    HandleForeign(rec);
  }
}

SeveClient::ApplyOutcome SeveClient::GuardedApply(const OrderedAction& rec,
                                                  bool force_eval) {
  ApplyOutcome outcome;
  const bool blind = rec.action->IsBlindWrite();
  if (!blind && applied_.count(rec.pos) != 0) {
    outcome.duplicate = true;
    return outcome;
  }
  if (!blind) {
    // Out-of-order detection: a read input already written by a newer
    // (higher-pos) action means this evaluation cannot reproduce the
    // serial history at pos. The action is still applied — the result is
    // at worst transiently ahead of serial order and authoritative blind
    // writes / substituted stable values overwrite it as they arrive —
    // but it is excluded from completions and the serializability audit.
    // (The server substitutes completed chain members with their stable
    // values, so this path is confined to the sub-RTT window before a
    // chain member's completion arrives.)
    for (ObjectId id : rec.action->ReadSet()) {
      const SeqNum* last = last_writer_.Find(id);
      if ((last != nullptr && *last > rec.pos) || tainted_.Contains(id)) {
        outcome.out_of_order = true;
        break;
      }
    }
  }
  (void)force_eval;

  // Objects already written by a newer action must not be rolled back by
  // a transitively included older action or a blind write carrying an
  // older snapshot.
  std::vector<Object> protected_values;
  std::vector<ObjectId> protected_missing;
  protected_values.reserve(rec.action->WriteSet().size());
  protected_missing.reserve(rec.action->WriteSet().size());
  for (ObjectId id : rec.action->WriteSet()) {
    const SeqNum* newest = last_writer_.Find(id);
    if (newest != nullptr && *newest > rec.pos) {
      const Object* obj = stable_.Find(id);
      if (obj != nullptr) {
        protected_values.push_back(*obj);
      } else {
        protected_missing.push_back(id);
      }
    }
  }

  outcome.digest = EvaluateAction(*rec.action, &stable_);
  if (!blind) applied_.insert(rec.pos);

  for (const Object& obj : protected_values) stable_.Upsert(obj);
  for (ObjectId id : protected_missing) (void)stable_.Remove(id);
  ObjectSet healed;
  for (ObjectId id : rec.action->WriteSet()) {
    SeqNum& last = last_writer_[id];
    const bool installed = rec.pos >= last;
    if (rec.pos > last) last = rec.pos;
    if (!installed) continue;  // guard kept the newer (clean) value
    if (!blind && outcome.out_of_order) {
      // The installed value came from non-serial inputs: taint it so
      // downstream readers are excluded from the audit too.
      tainted_.Insert(id);
    } else {
      // Clean serial evaluation or authoritative values: heal.
      healed.Insert(id);
    }
  }
  if (!healed.empty()) tainted_.SubtractWith(healed);
  return outcome;
}

void SeveClient::HandleForeign(const OrderedAction& rec) {
  const ApplyOutcome outcome = GuardedApply(rec);
  if (outcome.duplicate) return;
  if (!rec.action->IsBlindWrite()) {
    ++stats_.actions_evaluated;
    if (outcome.out_of_order) {
      // Transient-only evaluation: its result is neither authoritative
      // nor serializable — never complete it, never audit it.
      ++stats_.out_of_order_evals;
    } else {
      eval_digests_[rec.pos] = outcome.digest;
      if (options_.all_client_completions) {
        SendCompletion(rec, outcome.digest, /*out_of_order=*/false);
      }
    }
  }
  // Propagate to ζCO for objects not awaiting server confirmation.
  const ObjectSet propagate =
      ObjectSet::Difference(rec.action->WriteSet(), pending_.write_set());
  optimistic_.CopyObjectsFrom(stable_, propagate);
}

void SeveClient::HandleOwnEcho(const OrderedAction& rec) {
  // Locate the optimistic entry; with in-order delivery from the server
  // this is the queue head, but drops may have removed earlier entries.
  const PendingQueue::Entry entry = pending_.front().action->id() ==
                                            rec.action->id()
                                        ? pending_.front()
                                        : PendingQueue::Entry{};
  const bool at_head = entry.action != nullptr;

  // Own echoes must always produce a completion; with the resync blind
  // write preceding them in the batch their inputs are clean in all but
  // pathological cases (counted below).
  const ApplyOutcome outcome = GuardedApply(rec, /*force_eval=*/true);
  const ResultDigest stable_digest = outcome.digest;
  if (outcome.out_of_order) {
    // Evaluated over reordered inputs: commit for liveness, but flag the
    // completion so the position is excluded from the audit, and do not
    // contribute our digest either.
    ++stats_.out_of_order_evals;
  } else {
    eval_digests_[rec.pos] = stable_digest;
  }
  ++stats_.actions_evaluated;
  SendCompletion(rec, stable_digest, outcome.out_of_order);

  if (at_head) {
    stats_.response_time_us.Add(loop()->now() - entry.submitted_at);
    pending_.PopFront();
    if (stable_digest != entry.digest) {
      ++stats_.actions_reconciled;
      optimistic_.CopyObjectsFrom(stable_, rec.action->WriteSet());
      pending_.Reconcile(&optimistic_, stable_);
    }
  } else {
    // Out-of-order echo (only possible after drops reordered the queue):
    // drop the entry wherever it is and reconcile conservatively.
    (void)pending_.RemoveById(rec.action->id());
    ++stats_.actions_reconciled;
    optimistic_.CopyObjectsFrom(stable_, rec.action->WriteSet());
    pending_.Reconcile(&optimistic_, stable_);
  }
}

void SeveClient::HandleDropNotice(const DropNoticeBody& notice) {
  ++drops_observed_;
  // Install the read-set refresh first (last-writer guarded): the next
  // locally generated action must declare its reads against authoritative
  // positions, or a stale once-nearby neighbour keeps re-chaining this
  // client into drops forever.
  for (const Object& obj : notice.refresh) {
    SeqNum& last = last_writer_[obj.id()];
    if (notice.refresh_pos >= last) {
      stable_.Upsert(obj);
      last = notice.refresh_pos;
    }
  }
  if (!pending_.ContainsId(notice.action_id)) {
    // Nothing to roll back, but the refreshed values still belong in the
    // optimistic view for objects with no pending writes.
    ObjectSet refreshed;
    for (const Object& obj : notice.refresh) refreshed.Insert(obj.id());
    refreshed.SubtractWith(pending_.write_set());
    optimistic_.CopyObjectsFrom(stable_, refreshed);
    return;
  }
  ObjectSet refreshed;
  for (const Object& obj : notice.refresh) refreshed.Insert(obj.id());
  SubmitWork(install_us_, [this, id = notice.action_id,
                           refreshed = std::move(refreshed)]() {
    if (!pending_.ContainsId(id)) return;
    // Capture the victim's write set before removal: its optimistic
    // effects must be rolled back even if no surviving entry writes the
    // same objects.
    ObjectSet dropped_ws;
    for (const PendingQueue::Entry& e : pending_.entries()) {
      if (e.action->id() == id) {
        dropped_ws = e.action->WriteSet();
        break;
      }
    }
    (void)pending_.RemoveById(id);
    optimistic_.CopyObjectsFrom(stable_,
                                ObjectSet::Union(dropped_ws, refreshed));
    // Replay the surviving queue over the refreshed snapshot (Alg. 3).
    pending_.Reconcile(&optimistic_, stable_);
  });
}

void SeveClient::SendCompletion(const OrderedAction& rec,
                                ResultDigest digest, bool out_of_order) {
  auto body = std::make_shared<CompletionBody>();
  body->pos = rec.pos;
  body->action_id = rec.action->id();
  body->from = client_;
  body->digest = digest;
  body->out_of_order = out_of_order;
  if (digest != kConflictDigest) {
    body->written = stable_.Extract(rec.action->WriteSet());
  }
  Send(server_, body->WireSize(), body);
}

}  // namespace seve
