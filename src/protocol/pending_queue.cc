#include "protocol/pending_queue.h"

#include <algorithm>

namespace seve {

ResultDigest EvaluateAction(const Action& action, WorldState* state) {
  Result<ResultDigest> result = action.Apply(state);
  return result.ok() ? *result : kConflictDigest;
}

void PendingQueue::Push(ActionPtr action, ResultDigest digest,
                        VirtualTime submitted_at) {
  write_set_.UnionWith(action->WriteSet());
  entries_.push_back(  // seve-lint: allow(hot-vector-realloc): std::deque has no reserve
      Entry{std::move(action), digest, submitted_at});
}

void PendingQueue::PopFront() {
  entries_.pop_front();
  RebuildWriteSet();
}

Status PendingQueue::RemoveById(ActionId id) {
  auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [id](const Entry& e) { return e.action->id() == id; });
  if (it == entries_.end()) return Status::NotFound("action not pending");
  entries_.erase(it);
  RebuildWriteSet();
  return Status::OK();
}

bool PendingQueue::ContainsId(ActionId id) const {
  return std::any_of(entries_.begin(), entries_.end(), [id](const Entry& e) {
    return e.action->id() == id;
  });
}

void PendingQueue::Reconcile(WorldState* optimistic,
                             const WorldState& stable) {
  // ζCO(WS(Q)) ← ζCS(WS(Q))
  optimistic->CopyObjectsFrom(stable, write_set_);
  // Re-apply queued actions in order, refreshing optimistic results.
  for (Entry& entry : entries_) {
    entry.digest = EvaluateAction(*entry.action, optimistic);
  }
}

void PendingQueue::RebuildWriteSet() {
  // In-place rebuild: Clear keeps the inline/heap capacity and UnionWith
  // runs through the shared merge scratch, so a Pop/Remove rebuild never
  // allocates in steady state.
  write_set_.Clear();
  for (const Entry& entry : entries_) {
    write_set_.UnionWith(entry.action->WriteSet());
  }
}

}  // namespace seve
