#include "protocol/seve_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>

#include "action/blind_write.h"
#include "net/channel.h"
#include "sync/reconcile.h"

namespace seve {
namespace {

// Wall-clock for the kernel_timing option. Measurement only: the value
// never feeds simulated time, stats or digests (steady_clock is the one
// clock det-banned-fn permits for exactly this use).
int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SeveServer::SeveServer(NodeId node, EventLoop* loop, WorldState initial,
                       const CostModel& cost, const InterestModel& interest,
                       const SeveOptions& options, const AABB& world_bounds)
    : Node(node, loop),
      state_(std::move(initial)),
      cost_(cost),
      interest_(interest),
      options_(options),
      client_index_(world_bounds,
                    std::max(1.0, interest.ReachTerm() + 1.0)) {
  // Chain breaking piggybacks on the push machinery; the pure
  // reply-on-submission mode ships actions before their tick's validity
  // decision, so dropping requires proactive push.
  assert(!options_.dropping || options_.proactive_push);
  ready_scratch_.reserve(ClientTable::kInitialPendingCapacity);
  closure_included_.reserve(ClientTable::kInitialPendingCapacity);
}

void SeveServer::RegisterClient(ClientId client, NodeId node,
                                const InterestProfile& profile) {
  const ClientTable::Slot slot =
      clients_.Register(client, node, profile, loop()->now());
  (void)client_index_.Insert(slot,
                             AABB::FromCircle(profile.position, 0.0));
  max_client_radius_ = std::max(max_client_radius_, profile.radius);
}

void SeveServer::Start() {
  running_ = true;
  // Pre-size the routing scratch for the registered population: a circle
  // query yields at most one key per client, so after this reserve the
  // steady-state route path performs no allocation (fanout.route_alloc
  // stays 0).
  route_scratch_.reserve(clients_.size());
  dirty_scratch_.reserve(clients_.size());
  if (options_.dropping) {
    loop()->After(options_.tick_us, [this]() { OnTick(); });
  }
  if (options_.proactive_push) {
    const Micros push_period = static_cast<Micros>(
        options_.omega * static_cast<double>(interest_.rtt_us()));
    loop()->After(std::max<Micros>(push_period, 1),
                  [this]() { OnPushCycle(); });
  }
  if (options_.commit_notice_period_us > 0) {
    loop()->After(options_.commit_notice_period_us,
                  [this]() { SendCommitNotices(); });
  }
}

void SeveServer::OnMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case kSubmitAction: {
      const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
      HandleSubmit(submit.action->origin(), submit.action, submit.resync);
      break;
    }
    case kCompletion:
      HandleCompletion(static_cast<const CompletionBody&>(*msg.body));
      break;
    case kRejoin:
      HandleRejoin(static_cast<const RejoinBody&>(*msg.body));
      break;
    case kSnapshotRequest:
      HandleSnapshotRequest(
          static_cast<const SnapshotRequestBody&>(*msg.body), msg.src);
      break;
    case kSyncRequest:
      HandleSyncRequest(static_cast<const SyncRequestBody&>(*msg.body),
                        msg.src);
      break;
    case kSyncIBF:
      HandleSyncIBF(static_cast<const SyncIBFBody&>(*msg.body), msg.src);
      break;
    default:
      break;
  }
}

void SeveServer::HandleRejoin(const RejoinBody& rejoin) {
  const ClientTable::Slot slot = clients_.SlotOf(rejoin.client);
  if (slot == ClientTable::kNoSlot) return;
  // The client's pre-crash conversation is dead: start a fresh outgoing
  // channel incarnation so unacked pre-crash frames stay buried, and drop
  // queued pushes — the snapshot supersedes them. Only the send side
  // resets: this Rejoin already arrived on the client's new incoming
  // stream, which must keep flowing.
  clients_.ClearPending(slot);
  if (ReliableChannel* channel = reliable_channel()) {
    channel->ResetPeerSend(clients_.node(slot));
  }
  ++stats_.rejoins;
}

void SeveServer::HandleSnapshotRequest(const SnapshotRequestBody& request,
                                       NodeId src) {
  const ClientTable::Slot slot = clients_.SlotOf(request.client);
  if (slot == ClientTable::kNoSlot) {
    SendNack(src, request.client, kSyncModeRejoin);
    return;
  }
  const SeqNum snapshot_pos = queue_.begin_pos() - 1;
  const std::vector<ObjectId> ids = state_.ObjectIds();  // sorted

  const int64_t per_chunk =
      std::max<int64_t>(1, options_.snapshot_chunk_objects);
  const int64_t total = std::max<int64_t>(
      1, (static_cast<int64_t>(ids.size()) + per_chunk - 1) / per_chunk);

  std::vector<CatchupChunk> chunks;
  chunks.reserve(static_cast<size_t>(total));
  std::shared_ptr<SnapshotChunkBody> last;
  for (int64_t c = 0; c < total; ++c) {
    auto body = std::make_shared<SnapshotChunkBody>();
    body->snapshot_pos = snapshot_pos;
    body->chunk = c;
    body->total = total;
    const size_t begin = static_cast<size_t>(c * per_chunk);
    const size_t end = std::min(ids.size(),
                                static_cast<size_t>((c + 1) * per_chunk));
    body->objects.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Object* obj = state_.Find(ids[i]);
      if (obj != nullptr) body->objects.push_back(*obj);
    }
    last = body;
    chunks.push_back(CatchupChunk{std::move(body), 0});
  }

  // The live tail rides the final chunk; the included positions are
  // marked sent only when that chunk actually enters the send path.
  std::vector<SeqNum> tail_positions;
  CollectTail(&last->tail, &tail_positions);
  for (CatchupChunk& c : chunks) {
    c.wire_size =
        static_cast<const SnapshotChunkBody&>(*c.body).WireSize();
  }

  stats_.snapshot_chunks += total;
  const Micros cpu =
      cost_.serialize_us * static_cast<Micros>(total) + cost_.install_us;
  DispatchCatchup(slot, request.client, std::move(chunks),
                  std::move(tail_positions), cpu);
}

void SeveServer::CollectTail(std::vector<OrderedAction>* tail,
                             std::vector<SeqNum>* positions) {
  // Everything submitted but not yet committed. Completed entries ship as
  // blind writes of their stable results (replayable anywhere); the rest
  // ship as actions for the client to evaluate — exactly the substitution
  // rule AppendClosure applies.
  const size_t span =
      static_cast<size_t>(queue_.end_pos() - queue_.begin_pos());
  tail->reserve(tail->size() + span);
  positions->reserve(positions->size() + span);
  for (SeqNum pos = queue_.begin_pos(); pos < queue_.end_pos(); ++pos) {
    ServerQueue::Entry* entry = queue_.Find(pos);
    if (entry == nullptr || !entry->valid) continue;
    positions->push_back(pos);
    if (entry->completed) {
      tail->push_back(OrderedAction{
          pos,
          std::make_shared<BlindWrite>(ActionId(next_blind_id_++),
                                       loop()->now() / options_.tick_us,
                                       entry->stable_written)});
      ++stats_.blind_writes;
    } else {
      tail->push_back(OrderedAction{pos, entry->action});
    }
  }
}

void SeveServer::MarkTailSent(const std::vector<SeqNum>& positions,
                              ClientId client) {
  for (SeqNum pos : positions) {
    // Positions committed (and GC'd) since capture no longer need a mark.
    ServerQueue::Entry* entry = queue_.Find(pos);
    if (entry != nullptr) entry->sent.insert(client);
  }
}

void SeveServer::DispatchCatchup(ClientTable::Slot slot, ClientId client,
                                 std::vector<CatchupChunk> chunks,
                                 std::vector<SeqNum> tail_positions,
                                 Micros cpu) {
  const NodeId dst = clients_.node(slot);
  if (options_.snapshot_chunks_per_tick <= 0) {
    // Legacy burst: one send closure, the seed's exact schedule. The
    // per-node CPU queue is FIFO, so every flush submitted after this
    // point delivers after the final chunk — no suppression needed.
    const auto batch = static_cast<int64_t>(chunks.size());
    if (batch > stats_.sync.max_chunks_per_tick) {
      stats_.sync.max_chunks_per_tick = batch;
    }
    SubmitWork(cpu, [this, dst, client, chunks = std::move(chunks),
                     tail_positions = std::move(tail_positions)]() {
      MarkTailSent(tail_positions, client);
      for (const CatchupChunk& c : chunks) Send(dst, c.wire_size, c.body);
    });
    return;
  }
  PendingCatchup pc;
  pc.slot = slot;
  pc.dst = dst;
  pc.client = client;
  pc.chunks = std::move(chunks);
  pc.tail_positions = std::move(tail_positions);
  catchups_.push_back(std::move(pc));  // seve-lint: allow(hot-vector-realloc): one entry per crash/rejoin, cold
  SubmitWork(cpu, [this]() {
    // First batch rides the request's CPU slot unless the pacer is
    // already mid-flight (then the next tick picks this transfer up,
    // keeping the per-tick total bounded).
    if (!catchup_timer_armed_) PumpCatchups();
  });
}

void SeveServer::PumpCatchups() {
  if (catchups_.empty()) return;
  const int64_t per_tick =
      std::max<int64_t>(1, options_.snapshot_chunks_per_tick);
  int64_t batch = 0;
  size_t w = 0;
  for (size_t i = 0; i < catchups_.size(); ++i) {
    PendingCatchup& pc = catchups_[i];
    while (pc.next < pc.chunks.size() && batch < per_tick) {
      if (pc.next + 1 == pc.chunks.size()) {
        MarkTailSent(pc.tail_positions, pc.client);
      }
      const CatchupChunk& c = pc.chunks[pc.next];
      Send(pc.dst, c.wire_size, c.body);
      ++pc.next;
      ++batch;
    }
    if (pc.next < pc.chunks.size()) {
      if (w != i) catchups_[w] = std::move(pc);
      ++w;
    } else {
      // Transfer complete: lift the flush suppression and revisit the
      // slot on the next push cycle. The flush's send closure is CPU-
      // queued, so it lands on the wire after the final chunk above.
      clients_.MarkDirty(pc.slot);
    }
  }
  catchups_.resize(w);
  if (batch > stats_.sync.max_chunks_per_tick) {
    stats_.sync.max_chunks_per_tick = batch;
  }
  if (!catchups_.empty() && !catchup_timer_armed_) {
    catchup_timer_armed_ = true;
    loop()->After(options_.tick_us, [this]() {
      catchup_timer_armed_ = false;
      PumpCatchups();
    });
  }
}

void SeveServer::DrainCatchups() {
  // Quiesce aid (FlushAll): ship everything now, bypassing the pacer.
  // Deliberately not folded into max_chunks_per_tick — that counter
  // proves the paced steady-state bound, not the teardown flush.
  for (PendingCatchup& pc : catchups_) {
    while (pc.next < pc.chunks.size()) {
      if (pc.next + 1 == pc.chunks.size()) {
        MarkTailSent(pc.tail_positions, pc.client);
      }
      const CatchupChunk& c = pc.chunks[pc.next];
      Send(pc.dst, c.wire_size, c.body);
      ++pc.next;
    }
    clients_.MarkDirty(pc.slot);
  }
  catchups_.clear();
}

bool SeveServer::InCatchup(ClientTable::Slot slot) const {
  for (const PendingCatchup& pc : catchups_) {
    if (pc.slot == slot && pc.next < pc.chunks.size()) return true;
  }
  return false;
}

void SeveServer::SendNack(NodeId dst, ClientId client, uint8_t mode) {
  // Satellite fix over the seed: a catch-up request from an unknown
  // client was dropped silently, stranding the requester in rejoining_
  // forever. The NACK (plus the client-side retry timer) makes the race
  // against late registration deterministic and recoverable.
  ++stats_.sync.nacks;
  auto body = std::make_shared<SyncNackBody>();
  body->client = client;
  body->mode = mode;
  SubmitWork(cost_.serialize_us, [this, dst, body]() {
    Send(dst, body->WireSize(), body);
  });
}

int64_t SeveServer::FullSnapshotBytesEstimate() const {
  const std::vector<ObjectId> ids = state_.ObjectIds();
  int64_t object_bytes = 0;
  for (ObjectId id : ids) {
    const Object* obj = state_.Find(id);
    if (obj != nullptr) object_bytes += obj->WireSize();
  }
  const int64_t per_chunk =
      std::max<int64_t>(1, options_.snapshot_chunk_objects);
  const int64_t total = std::max<int64_t>(
      1, (static_cast<int64_t>(ids.size()) + per_chunk - 1) / per_chunk);
  // Mirror SnapshotChunkBody::WireSize's fixed per-chunk header.
  return object_bytes + 32 * total;
}

void SeveServer::HandleSyncRequest(const SyncRequestBody& request,
                                   NodeId src) {
  const ClientTable::Slot slot = clients_.SlotOf(request.client);
  if (slot == ClientTable::kNoSlot) {
    SendNack(src, request.client, request.mode);
    return;
  }
  ++stats_.sync.sync_rounds;
  stats_.sync.strata_bytes += request.strata.WireBytes();

  sync::StrataEstimator mine = sync::BuildStrata(state_);
  const int64_t est = mine.Estimate(request.strata);
  if (est == 0) {
    // Replica already matches ζS. A rejoin still needs the live tail and
    // the end-of-catchup signal; an anti-entropy round is simply done.
    if (request.mode == kSyncModeRejoin) {
      ++stats_.sync.delta_rejoins;
      stats_.sync.full_bytes_estimate += FullSnapshotBytesEstimate();
      SendDelta(slot, request.client, request.mode, {}, {});
    } else {
      ++stats_.sync.ae_rounds;
    }
    return;
  }

  sync::SyncSizing sizing;
  sizing.min_cells = options_.sync_min_cells;
  sizing.alpha = options_.sync_alpha;
  sizing.max_cells = options_.sync_max_cells;
  const int64_t cells = sync::CellsFor(est, sizing);
  stats_.sync.ibf_cells += cells;
  auto reply = std::make_shared<SyncIBFRequestBody>();
  reply->client = request.client;
  reply->mode = request.mode;
  reply->cells = cells;
  const NodeId dst = clients_.node(slot);
  SubmitWork(cost_.serialize_us, [this, dst, reply]() {
    Send(dst, reply->WireSize(), reply);
  });
}

void SeveServer::HandleSyncIBF(const SyncIBFBody& body, NodeId src) {
  const ClientTable::Slot slot = clients_.SlotOf(body.client);
  if (slot == ClientTable::kNoSlot) {
    SendNack(src, body.client, body.mode);
    return;
  }
  const sync::DeltaPlan plan = sync::PlanDelta(state_, body.ibf);
  if (!plan.ok) {
    ++stats_.sync.decode_failures;
    if (body.mode == kSyncModeRejoin) {
      // Deterministic fallback: the filter failed to peel, so answer as
      // if the client had asked for the full snapshot. The client treats
      // any SnapshotChunk during a delta rejoin as this signal.
      ++stats_.sync.fallbacks;
      SnapshotRequestBody full;
      full.client = body.client;
      HandleSnapshotRequest(full, src);
    }
    // A failed anti-entropy round just waits for the next period.
    return;
  }
  if (body.mode == kSyncModeRejoin) {
    ++stats_.sync.delta_rejoins;
    stats_.sync.full_bytes_estimate += FullSnapshotBytesEstimate();
  } else {
    ++stats_.sync.ae_rounds;
  }
  SendDelta(slot, body.client, body.mode, plan.ship, plan.remove);
}

void SeveServer::SendDelta(ClientTable::Slot slot, ClientId client,
                           uint8_t mode,
                           const std::vector<ObjectId>& ship,
                           const std::vector<ObjectId>& remove) {
  const SeqNum snapshot_pos = queue_.begin_pos() - 1;
  const int64_t per_chunk =
      std::max<int64_t>(1, options_.snapshot_chunk_objects);
  const int64_t total = std::max<int64_t>(
      1, (static_cast<int64_t>(ship.size()) + per_chunk - 1) / per_chunk);

  std::vector<CatchupChunk> chunks;
  chunks.reserve(static_cast<size_t>(total));
  std::shared_ptr<SyncDeltaBody> last;
  for (int64_t c = 0; c < total; ++c) {
    auto body = std::make_shared<SyncDeltaBody>();
    body->client = client;
    body->mode = mode;
    body->snapshot_pos = snapshot_pos;
    body->chunk = c;
    body->total = total;
    const size_t begin = static_cast<size_t>(c * per_chunk);
    const size_t end = std::min(ship.size(),
                                static_cast<size_t>((c + 1) * per_chunk));
    body->objects.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const Object* obj = state_.Find(ship[i]);
      if (obj != nullptr) body->objects.push_back(*obj);
    }
    last = body;
    chunks.push_back(CatchupChunk{std::move(body), 0});
  }
  last->removed = remove;

  std::vector<SeqNum> tail_positions;
  if (mode == kSyncModeRejoin) {
    CollectTail(&last->tail, &tail_positions);
  }
  int64_t delta_bytes = 0;
  for (CatchupChunk& c : chunks) {
    c.wire_size = static_cast<const SyncDeltaBody&>(*c.body).WireSize();
    delta_bytes += c.wire_size;
  }
  stats_.sync.objects_shipped += static_cast<int64_t>(ship.size());
  stats_.sync.objects_removed += static_cast<int64_t>(remove.size());
  stats_.sync.delta_bytes += delta_bytes;

  const Micros cpu =
      cost_.serialize_us * static_cast<Micros>(total) + cost_.install_us;
  if (mode == kSyncModeRejoin) {
    DispatchCatchup(slot, client, std::move(chunks),
                    std::move(tail_positions), cpu);
    return;
  }
  // Anti-entropy repairs are small by construction; they bypass the
  // catch-up pacer (and its flush suppression, which only the rejoin
  // path needs — a live client applies pushes and AE deltas alike).
  const NodeId dst = clients_.node(slot);
  SubmitWork(cpu, [this, dst, chunks = std::move(chunks)]() {
    for (const CatchupChunk& c : chunks) Send(dst, c.wire_size, c.body);
  });
}

void SeveServer::HandleSubmit(ClientId from, ActionPtr action,
                              const ObjectSet& resync) {
  const SeqNum pos = queue_.Append(action, loop()->now());
  ++stats_.actions_submitted;
  UpdateClientProfile(from, action->Interest());

  Micros cpu = cost_.serialize_us;
  if (options_.proactive_push) {
    cpu += RouteToClients(pos, *action);
    if (!options_.dropping) {
      // The submitter gets its closure reply immediately (one round
      // trip); pushes pre-warm the *other* interested clients, which is
      // what keeps these replies lean (Section III-D).
      validity_frontier_ = pos + 1;
      std::vector<OrderedAction> batch;
      AppendClosure(from, pos, &cpu, &batch, resync);
      const ClientTable::Slot slot = clients_.SlotOf(from);
      if (slot != ClientTable::kNoSlot && !batch.empty()) {
        const NodeId dst = clients_.node(slot);
        SubmitWork(cpu, [this, dst, batch = std::move(batch)]() {
          auto body = std::make_shared<DeliverActionsBody>();
          body->actions = std::move(batch);
          Send(dst, body->WireSize(), body);
        });
        return;
      }
    } else if (options_.move_supersession && action->IsMovement()) {
      // Updatable queue: this move supersedes the origin's still-queued,
      // never-sent predecessor. Only reachable in dropping mode — the
      // synchronous reply above marks the predecessor sent otherwise.
      const SeqNum prev = queue_.NoteMovementAppend(pos, from);
      if (prev != kInvalidSeq) SupersedeMove(prev);
    }
    // With dropping enabled the echo must wait for this tick's validity
    // decision; OnTick sends the origin replies right after deciding.
    if (!resync.empty()) pending_resync_[pos] = resync;
    SubmitWork(cpu, []() {});
  } else {
    // Incomplete World Model without push: reply immediately with the
    // transitive closure of the submitted action (Algorithm 5 step 4b).
    validity_frontier_ = pos + 1;
    const ClientTable::Slot slot = clients_.SlotOf(from);
    if (slot == ClientTable::kNoSlot) return;
    const NodeId dst = clients_.node(slot);
    std::vector<OrderedAction> batch;
    AppendClosure(from, pos, &cpu, &batch, resync);
    SubmitWork(cpu, [this, dst, batch = std::move(batch)]() {
      auto body = std::make_shared<DeliverActionsBody>();
      body->actions = std::move(batch);
      Send(dst, body->WireSize(), body);
    });
  }
}

void SeveServer::SupersedeMove(SeqNum prev) {
  ServerQueue::Entry* entry = queue_.Find(prev);
  if (entry == nullptr) return;
  const ClientId origin = entry->action->origin();
  const ActionId action_id = entry->action->id();
  ObjectSet read_set = entry->action->ReadSet();
  queue_.MarkInvalid(prev);
  ++stats_.fanout.superseded_moves;
  // Stale pending-push references and the resync stash resolve lazily /
  // eagerly: AppendClosure skips invalid entries, the stash dies here.
  pending_resync_.Erase(prev);
  // An invalidated head may unblock the committed frontier.
  if (prev == queue_.begin_pos()) {
    (void)queue_.Complete(prev, 0, {}, [this](const ServerQueue::Entry& e) {
      state_.ApplyObjects(e.stable_written);
      committed_digests_[e.pos] = e.stable_digest;
      ++stats_.actions_committed;
    });
  }
  const ClientTable::Slot slot = clients_.SlotOf(origin);
  if (slot == ClientTable::kNoSlot) return;
  const NodeId dst = clients_.node(slot);
  // The origin rolls the superseded move back exactly like an
  // Information Bound drop: notice + authoritative refresh of its reads.
  SubmitWork(cost_.serialize_us, [this, dst, prev, action_id,
                                  read_set = std::move(read_set)]() {
    auto body = std::make_shared<DropNoticeBody>();
    body->action_id = action_id;
    body->pos = prev;
    body->refresh = state_.Extract(read_set);
    body->refresh_pos = queue_.begin_pos() - 1;
    Send(dst, body->WireSize(), body);
  });
}

Micros SeveServer::RouteToClients(SeqNum pos, const Action& action) {
  const int64_t t0 = options_.kernel_timing ? WallNowNs() : 0;
  const InterestProfile profile = action.Interest();
  // With velocity culling the influence center may be projected by up to
  // s·(1+ω)RTT (= half the reach term); widen the spatial pre-filter so
  // the exact test sees every possible hit.
  const double projection_margin =
      interest_.velocity_culling() ? 0.5 * interest_.ReachTerm() : 0.0;
  const double query_radius = interest_.ReachTerm() + profile.radius +
                              max_client_radius_ + projection_margin;
  route_scratch_.clear();
  const size_t cap_before = route_scratch_.capacity();
  client_index_.CollectCircleInto(profile.position, query_radius,
                                  &route_scratch_);
  if (route_scratch_.capacity() != cap_before) ++stats_.fanout.route_alloc;
  const int candidates = static_cast<int>(route_scratch_.size());
  const ClientTable::Slot origin_slot = clients_.SlotOf(action.origin());
  const VirtualTime now = loop()->now();
  bool origin_routed = false;
  for (const uint64_t key : route_scratch_) {
    const auto slot = static_cast<ClientTable::Slot>(key);
    if (slot != origin_slot &&
        !interest_.MayAffect(profile, now, clients_.ProfileOf(slot),
                             clients_.profile_time(slot))) {
      continue;
    }
    if (slot == origin_slot) origin_routed = true;
    clients_.MarkPending(slot, pos, &stats_.fanout.route_alloc);
  }
  // The origin always gets its own action back even if the spatial query
  // missed it (e.g. a zero-radius profile on a grid boundary).
  if (origin_slot != ClientTable::kNoSlot && !origin_routed) {
    clients_.MarkPending(origin_slot, pos, &stats_.fanout.route_alloc);
  }
  if (options_.kernel_timing) flush_route_wall_ns_ += WallNowNs() - t0;
  return static_cast<Micros>(cost_.interest_test_us *
                             static_cast<double>(std::max(candidates, 1)));
}

void SeveServer::AppendClosure(ClientId client, SeqNum pos,
                               Micros* cpu_cost,
                               std::vector<OrderedAction>* out,
                               const ObjectSet& resync) {
  ServerQueue::Entry* target = queue_.Find(pos);
  if (target == nullptr || !target->valid) return;
  if (target->sent.count(client) != 0) return;

  ObjectSet read_set =
      ObjectSet::Union(target->action->ReadSet(), resync);
  closure_included_.clear();
  const int visits = queue_.WalkConflicts(
      pos, &read_set, [&](const ServerQueue::Entry& entry) {
        if (entry.sent.count(client) != 0 &&
            !entry.action->WriteSet().Intersects(resync)) {
          return ServerQueue::WalkVerdict::kResolve;
        }
        // Not yet sent — or sent but the client flagged its outputs as
        // non-replayable, so re-deliver (as stable values once known).
        closure_included_.push_back(entry.pos);
        return ServerQueue::WalkVerdict::kInclude;
      });
  stats_.closure_visits += visits;
  *cpu_cost += static_cast<Micros>(
      cost_.closure_per_visit_us * static_cast<double>(visits + 1));

  // Mark sent(a) ∪= {C} for the target and every included action.
  target->sent.insert(client);
  for (SeqNum p : closure_included_) {
    ServerQueue::Entry* entry = queue_.Find(p);
    if (entry != nullptr) entry->sent.insert(client);
  }

  // Assemble in ascending pos order with the blind write W(S, ζS(S))
  // first (Algorithm 6 prepends it last).
  std::sort(closure_included_.begin(), closure_included_.end());
  const size_t start = out->size();
  out->reserve(start + closure_included_.size() + 2);
  if (!read_set.empty()) {
    auto blind = std::make_shared<BlindWrite>(
        ActionId(next_blind_id_++),
        loop()->now() / options_.tick_us,
        state_.Extract(read_set));
    ++stats_.blind_writes;
    // Effective position: the committed frontier, so client-side
    // last-writer guards treat the snapshot as older than any queued
    // action it accompanies.
    out->push_back(OrderedAction{queue_.begin_pos() - 1, blind});
    *cpu_cost += cost_.install_us;
  }
  for (SeqNum p : closure_included_) {
    const ServerQueue::Entry* entry = queue_.Find(p);
    if (entry == nullptr) continue;
    if (entry->completed) {
      // Substitute the stable effect: value shipping is replayable at
      // any client regardless of what it applied before, unlike re-
      // executing the action over possibly-newer inputs.
      out->push_back(OrderedAction{
          entry->pos,
          std::make_shared<BlindWrite>(ActionId(next_blind_id_++),
                                       loop()->now() / options_.tick_us,
                                       entry->stable_written)});
      ++stats_.blind_writes;
    } else {
      out->push_back(OrderedAction{entry->pos, entry->action});
    }
  }
  out->push_back(OrderedAction{target->pos, target->action});
  stats_.closure_size.Add(static_cast<int64_t>(out->size() - start));
}

void SeveServer::OnTick() {
  // Algorithm 7, onNextTick(): decide validity for every action submitted
  // since the previous tick, in submission order. An action is dropped
  // when its transitive conflict chain reaches an action farther than
  // `threshold` away.
  Micros cpu = 0;
  struct Drop {
    ClientId origin;
    SeqNum pos;
    ActionId action_id;
    ObjectSet read_set;
  };
  std::vector<Drop> drops;
  const SeqNum end = queue_.end_pos();
  const SeqNum scan_start = std::max(tick_scan_pos_, queue_.begin_pos());
  for (SeqNum pos = scan_start; pos < end; ++pos) {
    ServerQueue::Entry* entry = queue_.Find(pos);
    if (entry == nullptr || !entry->valid) continue;
    const Vec2 anchor = entry->action->Interest().position;
    bool invalid = false;
    ObjectSet read_set = entry->action->ReadSet();
    const int visits = queue_.WalkConflicts(
        pos, &read_set, [&](const ServerQueue::Entry& other) {
          const Vec2 other_pos = other.action->Interest().position;
          if (Distance(anchor, other_pos) > options_.threshold) {
            invalid = true;
            return ServerQueue::WalkVerdict::kStop;
          }
          // S ← (S − WS(A_j)) ∪ RS(A_j); with RS ⊇ WS this is S ∪ RS.
          return ServerQueue::WalkVerdict::kInclude;
        });
    stats_.closure_visits += visits;
    cpu += static_cast<Micros>(cost_.closure_per_visit_us *
                               static_cast<double>(visits + 1));
    if (invalid) {
      queue_.MarkInvalid(pos);
      ++stats_.actions_dropped;
      // Information Bound drops are rare: the audit log and the notice
      // list grow amortized over the run, not per tick.
      dropped_positions_.push_back(pos);  // seve-lint: allow(hot-vector-realloc): rare drop path (covers next line too)
      drops.push_back(Drop{entry->action->origin(), pos,
                           entry->action->id(),
                           entry->action->ReadSet()});
      // A dropped head may unblock the committed frontier.
      if (pos == queue_.begin_pos()) {
        (void)queue_.Complete(pos, 0, {}, [this](const ServerQueue::Entry& e) {
          state_.ApplyObjects(e.stable_written);
          committed_digests_[e.pos] = e.stable_digest;
          ++stats_.actions_committed;
        });
      }
    }
  }
  tick_scan_pos_ = end;
  validity_frontier_ = end;

  // Send the surviving submitters their closure replies now — the echo
  // waits only for the validity decision, never for the push cadence.
  struct Reply {
    NodeId node;
    std::vector<OrderedAction> batch;
  };
  std::vector<Reply> replies;
  replies.reserve(static_cast<size_t>(end - scan_start));
  for (SeqNum pos = scan_start; pos < end; ++pos) {
    const ServerQueue::Entry* entry = queue_.Find(pos);
    if (entry == nullptr || !entry->valid) {
      pending_resync_.Erase(pos);
      continue;
    }
    const ClientId origin = entry->action->origin();
    const ClientTable::Slot slot = clients_.SlotOf(origin);
    if (slot == ClientTable::kNoSlot) continue;
    const NodeId dst = clients_.node(slot);
    ObjectSet resync;
    if (ObjectSet* stashed = pending_resync_.Find(pos)) {
      resync = std::move(*stashed);
      pending_resync_.Erase(pos);
    }
    std::vector<OrderedAction> batch;
    AppendClosure(origin, pos, &cpu, &batch, resync);
    if (!batch.empty()) {
      replies.push_back(Reply{dst, std::move(batch)});
    }
  }

  SubmitWork(cpu, [this, drops = std::move(drops),
                   replies = std::move(replies)]() {
    for (const Reply& reply : replies) {
      auto body = std::make_shared<DeliverActionsBody>();
      body->actions = reply.batch;
      Send(reply.node, body->WireSize(), body);
    }
    for (const Drop& drop : drops) {
      const ClientTable::Slot slot = clients_.SlotOf(drop.origin);
      if (slot == ClientTable::kNoSlot) continue;
      auto body = std::make_shared<DropNoticeBody>();
      body->action_id = drop.action_id;
      body->pos = drop.pos;
      // Refresh the origin's view of everything the dropped action read,
      // so its next declaration starts from authoritative positions.
      body->refresh = state_.Extract(drop.read_set);
      body->refresh_pos = queue_.begin_pos() - 1;
      Send(clients_.node(slot), body->WireSize(), body);
    }
  });

  if (running_) {
    loop()->After(options_.tick_us, [this]() { OnTick(); });
  }
}

void SeveServer::FlushSlot(ClientTable::Slot slot) {
  if (!catchups_.empty() && InCatchup(slot)) {
    // Paced catch-up in flight: the rejoining client drops regular
    // pushes, so flushing now would mark entries sent that never land.
    // Park the slot; PumpCatchups re-dirties it when the transfer ends.
    clients_.MarkDirty(slot);
    return;
  }
  std::vector<SeqNum>& pending = clients_.pending(slot);
  if (pending.empty()) return;
  // Partition in place against the validity frontier: ready positions
  // move to the scratch, the rest compact to the front (order and
  // capacity retained).
  ready_scratch_.clear();
  size_t keep = 0;
  for (SeqNum pos : pending) {
    if (pos < validity_frontier_) {
      ready_scratch_.push_back(pos);
    } else {
      pending[keep++] = pos;
    }
  }
  pending.resize(keep);
  // Dirty-list invariant: a slot left with pending work stays stamped in
  // the (new) epoch so the next cycle revisits it.
  if (keep > 0) clients_.MarkDirty(slot);
  if (ready_scratch_.empty()) return;
  std::sort(ready_scratch_.begin(), ready_scratch_.end());

  const ClientId client = clients_.id_of(slot);
  Micros cpu = 0;
  std::vector<OrderedAction> batch;
  for (SeqNum pos : ready_scratch_) {
    AppendClosure(client, pos, &cpu, &batch);
  }
  if (batch.empty()) return;
  // Restore global serialization order across the concatenated
  // sub-closures: a later target's chain may reach below an earlier
  // target's position, and clients must apply in pos order. (Blind
  // writes carry the committed frontier, so they sort to the front.)
  std::stable_sort(batch.begin(), batch.end(),
                   [](const OrderedAction& a, const OrderedAction& b) {
                     return a.pos < b.pos;
                   });
  ++stats_.fanout.push_batches;
  stats_.fanout.coalesced_pushes +=
      static_cast<int64_t>(ready_scratch_.size()) - 1;
  const NodeId dst = clients_.node(slot);
  SubmitWork(cpu, [this, dst, batch = std::move(batch)]() {
    auto body = std::make_shared<DeliverActionsBody>();
    body->actions = std::move(batch);
    Send(dst, body->WireSize(), body);
  });
}

void SeveServer::OnPushCycle() {
  const int64_t t0 = options_.kernel_timing ? WallNowNs() : 0;
  ++stats_.fanout.flush_cycles;
  if (options_.legacy_flush_scan) {
    // Pre-dirty-list arm, kept for side-by-side kernel benchmarking:
    // walk every registered slot. Ascending slot order is registration
    // order, so the emitted messages are identical to the dirty path's.
    const size_t n = clients_.size();
    stats_.fanout.dirty_slots_flushed += static_cast<int64_t>(n);
    for (size_t slot = 0; slot < n; ++slot) {
      FlushSlot(static_cast<ClientTable::Slot>(slot));
    }
  } else {
    clients_.TakeDirty(&dirty_scratch_);
    stats_.fanout.dirty_slots_flushed +=
        static_cast<int64_t>(dirty_scratch_.size());
    for (const ClientTable::Slot slot : dirty_scratch_) {
      FlushSlot(slot);
    }
  }
  if (options_.kernel_timing) flush_route_wall_ns_ += WallNowNs() - t0;

  if (running_) {
    const Micros push_period = static_cast<Micros>(
        options_.omega * static_cast<double>(interest_.rtt_us()));
    loop()->After(std::max<Micros>(push_period, 1),
                  [this]() { OnPushCycle(); });
  }
}

void SeveServer::FlushAll() {
  if (options_.dropping) OnTick();
  validity_frontier_ = queue_.end_pos();
  DrainCatchups();
  OnPushCycle();
}

void SeveServer::HandleCompletion(const CompletionBody& completion) {
  SubmitWork(cost_.install_us, []() {});
  if (completion.out_of_order) audit_excluded_.insert(completion.pos);
  const std::vector<SeqNum> installed = queue_.Complete(
      completion.pos, completion.digest, completion.written,
      [this](const ServerQueue::Entry& entry) {
        state_.ApplyObjects(entry.stable_written);
        if (audit_excluded_.count(entry.pos) == 0) {
          committed_digests_[entry.pos] = entry.stable_digest;
        }
        ++stats_.actions_committed;
      });
  (void)installed;
}

void SeveServer::UpdateClientProfile(ClientId client,
                                     const InterestProfile& profile) {
  const ClientTable::Slot slot = clients_.SlotOf(client);
  if (slot == ClientTable::kNoSlot) return;
  clients_.SetProfile(slot, profile, loop()->now());
  (void)client_index_.Move(slot, AABB::FromCircle(profile.position, 0.0));
  max_client_radius_ = std::max(max_client_radius_, profile.radius);
}

void SeveServer::SendCommitNotices() {
  auto body = std::make_shared<CommitNoticeBody>();
  body->pos = queue_.begin_pos() - 1;
  const size_t n = clients_.size();
  for (size_t slot = 0; slot < n; ++slot) {
    Send(clients_.node(static_cast<ClientTable::Slot>(slot)),
         body->WireSize(), body);
  }
  if (running_ && options_.commit_notice_period_us > 0) {
    loop()->After(options_.commit_notice_period_us,
                  [this]() { SendCommitNotices(); });
  }
}

}  // namespace seve
