#ifndef SEVE_PROTOCOL_CLIENT_COST_H_
#define SEVE_PROTOCOL_CLIENT_COST_H_

#include <functional>

#include "action/action.h"
#include "common/types.h"
#include "store/world_state.h"

namespace seve {

/// CPU price of evaluating one action given the evaluating replica's
/// current view of the world. Bound by the simulation runner to the
/// world's cost model (walls/avatars visible around the action).
using ActionCostFn = std::function<Micros(const Action&, const WorldState&)>;

}  // namespace seve

#endif  // SEVE_PROTOCOL_CLIENT_COST_H_
