// seve-lint: allow-file(hot-vector-realloc): Section II baseline path,
// not on the SEVE fan-out hot path this rule protects.
#include "protocol/lock_protocol.h"

#include <memory>

#include "protocol/pending_queue.h"

namespace seve {

LockServer::LockServer(NodeId node, EventLoop* loop, WorldState initial,
                       const CostModel& cost)
    : Node(node, loop), state_(std::move(initial)), cost_(cost) {}

void LockServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = node;
  client_order_.push_back(client);
}

void LockServer::OnMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case kLockRequest: {
      const auto& request = static_cast<const LockRequestBody&>(*msg.body);
      ++stats_.actions_submitted;
      SubmitWork(cost_.serialize_us, [this, action = request.action]() {
        TryGrant(action->origin(), action);
      });
      break;
    }
    case kLockEffect:
      HandleEffect(static_cast<const LockEffectBody&>(*msg.body));
      break;
    default:
      break;
  }
}

bool LockServer::LocksFree(const ObjectSet& set) const {
  for (ObjectId id : set) {
    if (lock_table_.Contains(id)) return false;
  }
  return true;
}

void LockServer::TryGrant(ClientId client, const ActionPtr& action) {
  if (LocksFree(action->ReadSet())) {
    Grant(client, action);
  } else {
    waiting_.push_back(Waiting{client, action});
  }
}

void LockServer::Grant(ClientId client, const ActionPtr& action) {
  for (ObjectId id : action->ReadSet()) {
    lock_table_[id] = action->id();
  }
  held_sets_[action->id()] = action->ReadSet();
  auto body = std::make_shared<LockGrantBody>();
  body->action_id = action->id();
  body->pos = next_pos_++;
  const NodeId* node = clients_.Find(client);
  if (node != nullptr) {
    Send(*node, body->WireSize(), body);
  }
}

void LockServer::HandleEffect(const LockEffectBody& effect) {
  SubmitWork(cost_.install_us, []() {});
  state_.ApplyObjects(effect.written);
  committed_digests_[effect.pos] = effect.digest;
  ++stats_.actions_committed;

  // Release the locks...
  if (ObjectSet* held = held_sets_.Find(effect.action_id)) {
    for (ObjectId id : *held) {
      const ActionId* owner = lock_table_.Find(id);
      if (owner != nullptr && *owner == effect.action_id) {
        lock_table_.Erase(id);
      }
    }
    held_sets_.Erase(effect.action_id);
  }

  // ...fan the effect out to every other client...
  auto body = std::make_shared<LockEffectBody>(effect);
  for (ClientId client : client_order_) {
    if (client == effect.origin) continue;
    Send(*clients_.Find(client), body->WireSize(), body);
  }

  // ...and grant whatever the released locks unblocked (FIFO scan).
  std::deque<Waiting> still_waiting;
  for (Waiting& waiter : waiting_) {
    if (LocksFree(waiter.action->ReadSet())) {
      Grant(waiter.client, waiter.action);
    } else {
      still_waiting.push_back(std::move(waiter));
    }
  }
  waiting_ = std::move(still_waiting);
}

LockClient::LockClient(NodeId node, EventLoop* loop, ClientId client,
                       NodeId server, WorldState initial,
                       ActionCostFn cost_fn, Micros install_us)
    : Node(node, loop),
      client_(client),
      server_(server),
      state_(std::move(initial)),
      cost_fn_(std::move(cost_fn)),
      install_us_(install_us) {}

void LockClient::SubmitLocalAction(ActionPtr action) {
  pending_[action->id()] = action;
  submitted_at_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  auto body = std::make_shared<LockRequestBody>(std::move(action));
  Send(server_, body->WireSize(), body);
}

void LockClient::OnMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case kLockGrant: {
      const auto& grant = static_cast<const LockGrantBody&>(*msg.body);
      ActionPtr* found = pending_.Find(grant.action_id);
      if (found == nullptr) return;
      ActionPtr action = std::move(*found);
      pending_.Erase(grant.action_id);
      const Micros cost = cost_fn_(*action, state_);
      SubmitWork(cost, [this, action, pos = grant.pos]() {
        // Execute under the global locks and ship the effect.
        const ResultDigest digest = EvaluateAction(*action, &state_);
        eval_digests_[pos] = digest;
        ++stats_.actions_evaluated;
        auto effect = std::make_shared<LockEffectBody>();
        effect->action_id = action->id();
        effect->origin = client_;
        effect->pos = pos;
        effect->digest = digest;
        if (digest != kConflictDigest) {
          effect->written = state_.Extract(action->WriteSet());
        }
        Send(server_, effect->WireSize(), effect);
        const VirtualTime* at = submitted_at_.Find(action->id());
        if (at != nullptr) {
          stats_.response_time_us.Add(loop()->now() - *at);
          submitted_at_.Erase(action->id());
        }
      });
      break;
    }
    case kLockEffect: {
      const auto effect =
          std::static_pointer_cast<const LockEffectBody>(msg.body);
      SubmitWork(install_us_, [this, effect]() {
        state_.ApplyObjects(effect->written);
        eval_digests_[effect->pos] = effect->digest;
      });
      break;
    }
    default:
      break;
  }
}

}  // namespace seve
