#ifndef SEVE_PROTOCOL_CLIENT_TABLE_H_
#define SEVE_PROTOCOL_CLIENT_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/types.h"

namespace seve {

/// SoA registry of a server's clients (DESIGN.md §13): one stable dense
/// slot per client, parallel arrays for the fields the hot paths touch
/// (interest profile for routing, pending-push list + dirty stamp for the
/// flush), and a FlatMap reduced to the id→slot lookup. Slots are handed
/// out in registration order and never move, so iterating slots ascending
/// reproduces the old `client_order_` broadcast order exactly.
///
/// The dirty machinery is epoch-stamped: MarkPending stamps its slot into
/// the current epoch (appending it to the dirty list once), TakeDirty
/// hands the sorted list to the flush and opens a fresh epoch. Invariant:
/// a slot with a non-empty pending list is always stamped in the current
/// epoch — the flush either drains the list or re-marks the slot.
class ClientTable {
 public:
  using Slot = uint32_t;
  static constexpr Slot kNoSlot = 0xffffffffu;
  /// Pending lists start with this capacity; growth past it is a
  /// routing-path allocation and is charged to `route_alloc`.
  static constexpr size_t kInitialPendingCapacity = 16;

  Slot Register(ClientId id, NodeId node, const InterestProfile& profile,
                VirtualTime now) {
    if (ids_.size() == ids_.capacity()) {
      const size_t cap = std::max<size_t>(64, ids_.size() * 2);
      ids_.reserve(cap);
      nodes_.reserve(cap);
      positions_.reserve(cap);
      velocities_.reserve(cap);
      radii_.reserve(cap);
      interest_classes_.reserve(cap);
      profile_times_.reserve(cap);
      pending_.reserve(cap);
      dirty_stamp_.reserve(cap);
      dirty_.reserve(cap);
    }
    const Slot slot = static_cast<Slot>(ids_.size());
    slot_of_[id] = slot;
    ids_.push_back(id);
    nodes_.push_back(node);
    positions_.push_back(profile.position);
    velocities_.push_back(profile.velocity);
    radii_.push_back(profile.radius);
    interest_classes_.push_back(profile.interest_class);
    profile_times_.push_back(now);
    pending_.emplace_back();
    std::vector<SeqNum>& pending = pending_.back();
    pending.reserve(kInitialPendingCapacity);
    dirty_stamp_.push_back(0);
    return slot;
  }

  /// A client's registration record, detached from any slot — the unit
  /// the ownership-migration protocol ships between shards (DESIGN.md
  /// §14). The source shard extracts it, the destination adopts it.
  struct ClientRecord {
    ClientId id;
    NodeId node;
    InterestProfile profile;
  };

  ClientRecord ExtractRecord(Slot slot) const {
    return ClientRecord{ids_[slot], nodes_[slot], ProfileOf(slot)};
  }

  /// Adopts a migrated client record: re-registers, or — when the client
  /// was homed here before (an object migrating back) — refreshes the
  /// existing slot's node and profile in place, so no duplicate slot is
  /// minted. There is deliberately no unregister: the source's slot
  /// stays behind as an inert record (its pending list is cleared by the
  /// caller; flushes skip empty lists).
  Slot Adopt(const ClientRecord& record, VirtualTime now) {
    const Slot existing = SlotOf(record.id);
    if (existing != kNoSlot) {
      nodes_[existing] = record.node;
      SetProfile(existing, record.profile, now);
      return existing;
    }
    return Register(record.id, record.node, record.profile, now);
  }

  size_t size() const { return ids_.size(); }
  Slot SlotOf(ClientId id) const {
    const Slot* slot = slot_of_.Find(id);
    return slot == nullptr ? kNoSlot : *slot;
  }
  ClientId id_of(Slot slot) const { return ids_[slot]; }
  NodeId node(Slot slot) const { return nodes_[slot]; }
  VirtualTime profile_time(Slot slot) const { return profile_times_[slot]; }

  InterestProfile ProfileOf(Slot slot) const {
    InterestProfile profile;
    profile.position = positions_[slot];
    profile.radius = radii_[slot];
    profile.velocity = velocities_[slot];
    profile.interest_class = interest_classes_[slot];
    return profile;
  }

  void SetProfile(Slot slot, const InterestProfile& profile,
                  VirtualTime now) {
    positions_[slot] = profile.position;
    velocities_[slot] = profile.velocity;
    radii_[slot] = profile.radius;
    interest_classes_[slot] = profile.interest_class;
    profile_times_[slot] = now;
  }

  std::vector<SeqNum>& pending(Slot slot) { return pending_[slot]; }
  const std::vector<SeqNum>& pending(Slot slot) const {
    return pending_[slot];
  }
  /// Rejoin: queued pushes are superseded by the snapshot. Capacity is
  /// kept; the stale dirty stamp is harmless (flush skips empty lists).
  void ClearPending(Slot slot) { pending_[slot].clear(); }

  /// Appends `pos` to the slot's pending-push list and stamps the slot
  /// into the current dirty epoch. A capacity growth is charged to
  /// `*route_alloc` (zero in steady state: capacity is retained across
  /// flushes).
  void MarkPending(Slot slot, SeqNum pos, int64_t* route_alloc) {
    std::vector<SeqNum>& pending = pending_[slot];
    if (pending.size() == pending.capacity()) ++*route_alloc;
    pending.push_back(pos);
    MarkDirty(slot);
  }

  /// Stamps the slot into the current dirty epoch (idempotent). The
  /// dirty list's capacity is pre-reserved by Register, so this never
  /// allocates.
  void MarkDirty(Slot slot) {
    if (dirty_stamp_[slot] == dirty_epoch_) return;
    dirty_stamp_[slot] = dirty_epoch_;
    dirty_.push_back(slot);
  }

  /// Moves the dirty set — sorted ascending, i.e. registration order —
  /// into *out and opens a fresh epoch. The flush must MarkDirty every
  /// slot it leaves with pending work. Buffers ping-pong between *out and
  /// the internal list, so steady state allocates nothing.
  void TakeDirty(std::vector<Slot>* out) {
    std::sort(dirty_.begin(), dirty_.end());
    out->clear();
    std::swap(*out, dirty_);
    ++dirty_epoch_;
  }

  size_t dirty_size() const { return dirty_.size(); }

 private:
  FlatMap<ClientId, Slot> slot_of_;
  // Parallel arrays indexed by slot (== registration order).
  std::vector<ClientId> ids_;
  std::vector<NodeId> nodes_;
  std::vector<Vec2> positions_;
  std::vector<Vec2> velocities_;
  std::vector<double> radii_;
  std::vector<uint32_t> interest_classes_;
  std::vector<VirtualTime> profile_times_;
  std::vector<std::vector<SeqNum>> pending_;  // routed, not yet pushed
  std::vector<uint64_t> dirty_stamp_;
  std::vector<Slot> dirty_;  // stamped slots, append order
  uint64_t dirty_epoch_ = 1;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_CLIENT_TABLE_H_
