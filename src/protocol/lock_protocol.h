#ifndef SEVE_PROTOCOL_LOCK_PROTOCOL_H_
#define SEVE_PROTOCOL_LOCK_PROTOCOL_H_

#include <deque>
#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// The classic distributed-locking protocol of Section II-B (the Project
/// Darkstar model): to run an action, a client first acquires server-side
/// locks on the action's read set; on grant it executes locally and ships
/// the *effect* (written values), which the server installs and
/// broadcasts. Strongly consistent, but a conflicting transaction costs
/// two round trips before the next one can proceed — the latency problem
/// the action-based protocols remove.
enum LockMsgKind : int {
  kLockRequest = 200,
  kLockGrant = 201,
  kLockEffect = 202,  // client -> server and server -> clients
};

struct LockRequestBody : MessageBody {
  ActionPtr action;  // carries RS(a); the action itself runs client-side

  explicit LockRequestBody(ActionPtr a) : action(std::move(a)) {}
  int kind() const override { return kLockRequest; }
  int64_t WireSize() const { return 16 + action->WireSize(); }
};

struct LockGrantBody : MessageBody {
  ActionId action_id;
  SeqNum pos = kInvalidSeq;  // grant order = commit order

  int kind() const override { return kLockGrant; }
  int64_t WireSize() const { return 24; }
};

struct LockEffectBody : MessageBody {
  ActionId action_id;
  ClientId origin;
  SeqNum pos = kInvalidSeq;
  ResultDigest digest = 0;
  std::vector<Object> written;

  int kind() const override { return kLockEffect; }
  int64_t WireSize() const {
    int64_t size = 40;
    for (const Object& obj : written) size += obj.WireSize();
    return size;
  }
};

/// Server side: an all-or-nothing lock table over object ids. A request
/// either atomically locks its whole read set or queues; queued requests
/// hold nothing, so there are no deadlocks. Effects install into the
/// authoritative state, release the locks, and fan out to every client.
class LockServer : public Node {
 public:
  LockServer(NodeId node, EventLoop* loop, WorldState initial,
             const CostModel& cost);

  void RegisterClient(ClientId client, NodeId node);

  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const DigestMap& committed_digests() const {
    return committed_digests_;
  }
  /// Requests currently blocked behind held locks.
  size_t waiting() const { return waiting_.size(); }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  struct Waiting {
    ClientId client;
    ActionPtr action;
  };

  void TryGrant(ClientId client, const ActionPtr& action);
  bool LocksFree(const ObjectSet& set) const;
  void Grant(ClientId client, const ActionPtr& action);
  void HandleEffect(const LockEffectBody& effect);

  WorldState state_;
  CostModel cost_;
  // LocksFree probes the table once per read-set id on every request and
  // every FIFO rescan — open addressing keeps those probes in one cache
  // line each.
  FlatMap<ObjectId, ActionId> lock_table_;  // held locks
  FlatMap<ActionId, ObjectSet> held_sets_;
  std::deque<Waiting> waiting_;
  FlatMap<ClientId, NodeId> clients_;
  std::vector<ClientId> client_order_;
  SeqNum next_pos_ = 0;
  ProtocolStats stats_;
  DigestMap committed_digests_;
};

/// Client side: submits lock requests, executes on grant, applies foreign
/// effects. Response time = submission until the own effect has been
/// produced and shipped (the grant round trip plus execution).
class LockClient : public Node {
 public:
  LockClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
             WorldState initial, ActionCostFn cost_fn, Micros install_us);

  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }
  const DigestMap& eval_digests() const {
    return eval_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  ClientId client_;
  NodeId server_;
  WorldState state_;
  ActionCostFn cost_fn_;
  Micros install_us_;
  ProtocolStats stats_;
  FlatMap<ActionId, ActionPtr> pending_;
  FlatMap<ActionId, VirtualTime> submitted_at_;
  DigestMap eval_digests_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_LOCK_PROTOCOL_H_
