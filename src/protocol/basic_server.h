#ifndef SEVE_PROTOCOL_BASIC_SERVER_H_
#define SEVE_PROTOCOL_BASIC_SERVER_H_

#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/msg.h"

namespace seve {

/// Server side of the basic action-based protocol (Algorithm 2).
///
/// The server executes no game logic at all: it timestamps and serializes
/// actions into a global queue, and on every submission from client C it
/// returns all actions between posC and pos(a) — so every client
/// eventually sees the full action stream (this is what limits the basic
/// protocol's scalability, Section III-A).
class BasicServer : public Node {
 public:
  BasicServer(NodeId node, EventLoop* loop, Micros serialize_us);

  void RegisterClient(ClientId client, NodeId node);

  /// Pushes all unseen actions to every client — used at the end of a run
  /// so replicas quiesce to a common state (equivalent to each client
  /// submitting one final no-op).
  void FlushAll();

  ProtocolStats& stats() { return stats_; }
  SeqNum queue_size() const { return static_cast<SeqNum>(queue_.size()); }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  struct ClientRec {
    NodeId node;
    SeqNum pos = 0;  // posC: index of the next action to send
  };

  void SendRange(ClientRec* rec, SeqNum up_to_exclusive);

  Micros serialize_us_;
  std::vector<OrderedAction> queue_;
  // FlatMap: FlushAll iterates this to fan out the tail of the queue, so
  // delivery order must be pinned by our hash, not the stdlib's buckets.
  FlatMap<ClientId, ClientRec> clients_;
  ProtocolStats stats_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_BASIC_SERVER_H_
