#ifndef SEVE_PROTOCOL_OCC_PROTOCOL_H_
#define SEVE_PROTOCOL_OCC_PROTOCOL_H_

#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// The timestamp-based optimistic concurrency control protocol of
/// Section II-B (certification schemes à la Sinha et al. [23]): clients
/// execute tentatively against possibly-stale local versions and submit
/// (read versions, written values); the server certifies against the
/// committed version map, committing or aborting. Aborts refresh the
/// client's read set and the client retries — which is what makes OCC
/// response time degrade under contention ("any change in the read set
/// of a transaction, such as some player moving, would potentially cause
/// the transaction to abort").
enum OccMsgKind : int {
  kOccSubmit = 210,
  kOccVerdict = 211,
  kOccEffect = 212,
};

struct OccSubmitBody : MessageBody {
  ActionPtr action;
  // Object -> committed pos the client read (kInvalidSeq = initial).
  std::vector<std::pair<ObjectId, SeqNum>> read_versions;
  ResultDigest digest = 0;
  std::vector<Object> written;
  int attempt = 1;

  int kind() const override { return kOccSubmit; }
  int64_t WireSize() const {
    int64_t size = 24 + action->WireSize() +
                   static_cast<int64_t>(read_versions.size()) * 16;
    for (const Object& obj : written) size += obj.WireSize();
    return size;
  }
};

struct OccVerdictBody : MessageBody {
  ActionId action_id;
  bool committed = false;
  SeqNum pos = kInvalidSeq;
  // On abort: fresh values + versions of the stale read set.
  std::vector<Object> refresh;
  std::vector<std::pair<ObjectId, SeqNum>> refresh_versions;

  int kind() const override { return kOccVerdict; }
  int64_t WireSize() const {
    int64_t size = 32 + static_cast<int64_t>(refresh_versions.size()) * 16;
    for (const Object& obj : refresh) size += obj.WireSize();
    return size;
  }
};

struct OccEffectBody : MessageBody {
  SeqNum pos = kInvalidSeq;
  ResultDigest digest = 0;
  std::vector<Object> written;
  std::vector<std::pair<ObjectId, SeqNum>> versions;

  int kind() const override { return kOccEffect; }
  int64_t WireSize() const {
    int64_t size = 24 + static_cast<int64_t>(versions.size()) * 16;
    for (const Object& obj : written) size += obj.WireSize();
    return size;
  }
};

/// Server side: version-map certification. No game logic executes here —
/// but unlike SEVE, every conflicting interleaving costs a full
/// abort/retry round trip at the client.
class OccServer : public Node {
 public:
  OccServer(NodeId node, EventLoop* loop, WorldState initial,
            const CostModel& cost);

  void RegisterClient(ClientId client, NodeId node);

  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const DigestMap& committed_digests() const {
    return committed_digests_;
  }
  int64_t aborts() const { return aborts_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  void Certify(const OccSubmitBody& submit, ClientId origin);

  WorldState state_;
  CostModel cost_;
  // Per-object committed-version map: certification probes it once per
  // read-set entry, so it sits in the same FlatMap the closure engine
  // uses for its hot lookups.
  FlatMap<ObjectId, SeqNum> versions_;
  FlatMap<ClientId, NodeId> clients_;
  std::vector<ClientId> client_order_;
  SeqNum next_pos_ = 0;
  int64_t aborts_ = 0;
  ProtocolStats stats_;
  DigestMap committed_digests_;
};

/// Client side: tentative execution over versioned local state, with
/// abort-refresh-retry (bounded attempts).
class OccClient : public Node {
 public:
  OccClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
            WorldState initial, ActionCostFn cost_fn, Micros install_us,
            int max_attempts = 5);

  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& state() const { return state_; }
  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }
  const DigestMap& eval_digests() const {
    return eval_digests_;
  }
  int64_t retries() const { return retries_; }
  int64_t gave_up() const { return gave_up_; }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  void Attempt(ActionPtr action, int attempt);

  ClientId client_;
  NodeId server_;
  WorldState state_;
  FlatMap<ObjectId, SeqNum> versions_;
  ActionCostFn cost_fn_;
  Micros install_us_;
  int max_attempts_;
  ProtocolStats stats_;
  FlatMap<ActionId, VirtualTime> submitted_at_;
  struct Pending {
    ActionPtr action;
    int attempt = 1;
    ResultDigest last_digest = 0;
    std::vector<Object> written;  // effect of the last tentative run
  };
  FlatMap<ActionId, Pending> in_flight_;
  DigestMap eval_digests_;
  int64_t retries_ = 0;
  int64_t gave_up_ = 0;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_OCC_PROTOCOL_H_
