#ifndef SEVE_PROTOCOL_BASIC_CLIENT_H_
#define SEVE_PROTOCOL_BASIC_CLIENT_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "action/action.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_cost.h"
#include "protocol/msg.h"
#include "protocol/pending_queue.h"
#include "store/world_state.h"

namespace seve {

/// Client side of the basic action-based protocol (Algorithm 1 +
/// reconciliation per Algorithm 3).
///
/// Maintains the optimistic state ζCO and the stable state ζCS. Every
/// action in the world eventually arrives from the server (piggybacked on
/// submission replies) and is applied to ζCS in serialization order;
/// locally generated actions are evaluated optimistically on ζCO first
/// and validated when they come back.
class BasicClient : public Node {
 public:
  BasicClient(NodeId node, EventLoop* loop, ClientId client, NodeId server,
              WorldState initial, ActionCostFn cost_fn, Micros install_us);

  /// Algorithm 1 step 2: optimistically evaluates `action` on ζCO (at CPU
  /// cost), enqueues <a, v>, and sends the action to the server.
  void SubmitLocalAction(ActionPtr action);

  ClientId client_id() const { return client_; }
  const WorldState& stable() const { return stable_; }
  const WorldState& optimistic() const { return optimistic_; }
  size_t pending_count() const { return pending_.size(); }

  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }

  /// pos -> digest for every action this client evaluated on ζCS; the
  /// consistency checker compares these across replicas (Theorem 1).
  const DigestMap& eval_digests() const {
    return eval_digests_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  void ApplyOrdered(const OrderedAction& rec);
  void HandleForeign(const OrderedAction& rec);
  void HandleOwnEcho(const OrderedAction& rec);

  ClientId client_;
  NodeId server_;
  WorldState optimistic_;  // ζCO
  WorldState stable_;      // ζCS
  PendingQueue pending_;   // Q
  ActionCostFn cost_fn_;
  Micros install_us_;
  ProtocolStats stats_;
  DigestMap eval_digests_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_BASIC_CLIENT_H_
