#ifndef SEVE_PROTOCOL_SEVE_SERVER_H_
#define SEVE_PROTOCOL_SEVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/metrics.h"
#include "net/node.h"
#include "protocol/client_table.h"
#include "protocol/interest.h"
#include "protocol/msg.h"
#include "protocol/options.h"
#include "protocol/server_queue.h"
#include "spatial/grid_index.h"
#include "store/world_state.h"
#include "world/cost_model.h"

namespace seve {

/// Server side of SEVE: the Incomplete World Model (Algorithms 5 and 6)
/// with the First Bound Model's proactive push (Section III-D) and the
/// Information Bound Model's chain breaking (Algorithm 7).
///
/// The server executes no game logic. Per action it pays:
///   * serialization (timestamp + enqueue),
///   * an Equation-1 interest test per nearby client (via a spatial index
///     over client positions),
///   * a transitive-closure walk proportional to the conflict chain
///     (Algorithm 6, via the server queue's writer index),
/// which is why its capacity is orders of magnitude beyond the Central
/// baseline's (Section V-B: ~3500 clients on one server).
///
/// Client bookkeeping is an SoA ClientTable (DESIGN.md §13): dense slots
/// in registration order, with the push flush driven by an epoch-stamped
/// dirty list so a cycle costs O(clients with pending work), not
/// O(registered clients).
class SeveServer : public Node {
 public:
  SeveServer(NodeId node, EventLoop* loop, WorldState initial,
             const CostModel& cost, const InterestModel& interest,
             const SeveOptions& options, const AABB& world_bounds);

  /// Registers a client with its initial interest profile (avatar position
  /// and maximum radius of influence rC).
  void RegisterClient(ClientId client, NodeId node,
                      const InterestProfile& profile);

  /// Starts the periodic machinery (tick processing and push cycles).
  void Start();
  /// Stops scheduling further cycles once the current queue drains.
  void Stop() { running_ = false; }

  /// Drain aid for quiescing a run: decides validity for everything still
  /// pending, then pushes every undelivered relevant action to every
  /// client immediately (bypassing the push cadence).
  void FlushAll();

  const WorldState& authoritative() const { return state_; }
  SeqNum committed_frontier() const { return queue_.begin_pos(); }
  size_t uncommitted() const { return queue_.uncommitted_size(); }

  ProtocolStats& stats() { return stats_; }
  const ProtocolStats& stats() const { return stats_; }

  /// Wall-clock nanoseconds spent in the flush + route kernels, when
  /// options.kernel_timing is on. Measurement only — never feeds
  /// simulated time, stats or digests.
  int64_t flush_route_wall_ns() const { return flush_route_wall_ns_; }

  /// pos -> stable digest of every installed action (from completion
  /// messages); ground truth for the consistency checker.
  const DigestMap& committed_digests() const {
    return committed_digests_;
  }
  /// pos of actions dropped by Algorithm 7.
  const std::vector<SeqNum>& dropped_positions() const {
    return dropped_positions_;
  }

 protected:
  void OnMessage(const Message& msg) override;

 private:
  void HandleSubmit(ClientId from, ActionPtr action,
                    const ObjectSet& resync);
  void HandleCompletion(const CompletionBody& completion);
  /// Crash recovery (Section III-C): resets the shared channel state and
  /// forgets queued pushes for the rejoining client.
  void HandleRejoin(const RejoinBody& rejoin);
  /// Streams ζS to the rejoining client in SnapshotChunk slices; the
  /// final chunk carries the uncommitted queue tail (completed entries
  /// substituted by blind writes of their stable results). `src` is the
  /// requesting node, so even an unregistered requester gets a NACK
  /// instead of a silent drop.
  void HandleSnapshotRequest(const SnapshotRequestBody& request, NodeId src);
  /// Delta-sync handshake (DESIGN.md §15), step 1: estimate the set
  /// difference from the client's strata estimator; zero diff short-
  /// circuits to a tail-only delta, otherwise the server asks for an IBF
  /// sized to the estimate.
  void HandleSyncRequest(const SyncRequestBody& request, NodeId src);
  /// Step 2: subtract the client's IBF from ours and peel. A clean decode
  /// ships only the symmetric difference (plus the live tail for rejoin
  /// mode); a failed peel falls back deterministically to the full
  /// SnapshotChunk stream.
  void HandleSyncIBF(const SyncIBFBody& body, NodeId src);
  void OnTick();  // Algorithm 7: validity decisions for the last tick
  void OnPushCycle();  // First Bound: proactive push every ω·RTT

  /// Per-slot half of the push cycle: partitions the slot's pending list
  /// against the validity frontier, closes over the ready positions and
  /// ships them as one coalesced DeliverActions batch. Re-stamps the slot
  /// dirty when positions stay queued (preserving the dirty-list
  /// invariant).
  void FlushSlot(ClientTable::Slot slot);

  /// Algorithm 6 for one target action: appends the ordered batch
  /// (blind write first) to *out and marks sent(a) for every included
  /// action. Appends nothing when there is nothing to deliver.
  /// `cpu_cost` accumulates the simulated cost of the walk.
  ///
  /// `resync` (origin replies only) adds objects the client flagged as
  /// non-replayable: they join the walked read set, their already-sent
  /// writers are force-included, and whatever remains unresolved lands
  /// in the head blind write. Included entries whose stable result is
  /// already known (completed) are substituted by blind writes of their
  /// written values — always replayable at any client.
  void AppendClosure(ClientId client, SeqNum pos, Micros* cpu_cost,
                     std::vector<OrderedAction>* out,
                     const ObjectSet& resync = {});

  /// Routes a new action to interested clients' pending-push lists
  /// (Equation 1 over the client spatial index, via the reusable
  /// route_scratch_ buffer — zero-alloc in steady state). Returns
  /// simulated cost.
  Micros RouteToClients(SeqNum pos, const Action& action);

  /// Updatable-queue supersession (options.move_supersession): the
  /// origin's still-queued, never-sent predecessor move at `prev` is
  /// invalidated and the origin is told through the Information Bound
  /// drop path (DropNotice + authoritative refresh of its reads).
  void SupersedeMove(SeqNum prev);

  void UpdateClientProfile(ClientId client, const InterestProfile& profile);
  void SendCommitNotices();

  /// One prepared catch-up message (snapshot or delta chunk) awaiting its
  /// turn on the wire.
  struct CatchupChunk {
    std::shared_ptr<const MessageBody> body;
    int64_t wire_size = 0;
  };
  /// An in-flight catch-up transfer in paced mode. While a slot appears
  /// here its regular flushes are suppressed: the rejoining client drops
  /// everything but catch-up traffic, so a mid-transfer push would lose
  /// its sent-marked entries forever.
  struct PendingCatchup {
    ClientTable::Slot slot = 0;
    NodeId dst = NodeId::Invalid();
    ClientId client = ClientId::Invalid();
    std::vector<CatchupChunk> chunks;
    std::vector<SeqNum> tail_positions;
    size_t next = 0;  // first unsent chunk
  };

  /// Captures the live uncommitted tail (completed entries substituted by
  /// blind writes of their stable results) WITHOUT marking anything sent;
  /// the included positions land in *positions so DispatchCatchup can
  /// mark them at send time. Marking at request time (the seed behaviour)
  /// loses the entries forever when the transfer is abandoned.
  void CollectTail(std::vector<OrderedAction>* tail,
                   std::vector<SeqNum>* positions);
  /// Ships a prepared catch-up. snapshot_chunks_per_tick == 0 submits one
  /// send closure (the seed's schedule, digest-identical); > 0 drips the
  /// chunks out per tick while suppressing regular flushes for the slot.
  void DispatchCatchup(ClientTable::Slot slot, ClientId client,
                       std::vector<CatchupChunk> chunks,
                       std::vector<SeqNum> tail_positions, Micros cpu);
  /// Sends the next paced batch (at most snapshot_chunks_per_tick chunks
  /// across all transfers) and re-arms the per-tick pacer while any
  /// transfer is unfinished.
  void PumpCatchups();
  /// Quiesce aid: ships every queued catch-up chunk immediately.
  void DrainCatchups();
  bool InCatchup(ClientTable::Slot slot) const;
  void MarkTailSent(const std::vector<SeqNum>& positions, ClientId client);
  /// Deterministic refusal for requests from unknown clients — the seed
  /// dropped them silently, stranding the requester forever.
  void SendNack(NodeId dst, ClientId client, uint8_t mode);
  /// Builds and dispatches the SyncDelta chunk stream for a decoded plan
  /// (rejoin mode appends the live tail to the last chunk).
  void SendDelta(ClientTable::Slot slot, ClientId client, uint8_t mode,
                 const std::vector<ObjectId>& ship,
                 const std::vector<ObjectId>& remove);
  /// What the legacy full snapshot of the current ζS would put on the
  /// wire — the bytes-saved baseline for sync.full_bytes_estimate.
  int64_t FullSnapshotBytesEstimate() const;

  WorldState state_;  // ζS (committed prefix only)
  CostModel cost_;
  InterestModel interest_;
  SeveOptions options_;
  ServerQueue queue_;
  // SoA client registry; slots ascend in registration order, which keeps
  // every per-client iteration identical to the old client_order_ walk.
  ClientTable clients_;
  GridIndex client_index_;  // keyed by client slot
  double max_client_radius_ = 0.0;
  SeqNum validity_frontier_ = 0;  // positions below are drop-decided
  SeqNum tick_scan_pos_ = 0;
  // Resync sets attached to submissions whose reply waits for the
  // validity tick (dropping mode); consumed by OnTick.
  FlatMap<SeqNum, ObjectSet> pending_resync_;
  ActionId::ValueType next_blind_id_ = 1ull << 62;
  bool running_ = false;
  ProtocolStats stats_;
  DigestMap committed_digests_;
  // Positions whose committed result was produced over reordered inputs
  // (flagged completions): excluded from the serializability audit.
  // Membership-only (never iterated), so bucket order is unobservable.
  // seve-lint: allow(det-unordered-container): membership test only
  std::unordered_set<SeqNum> audit_excluded_;
  std::vector<SeqNum> dropped_positions_;
  // Reusable hot-path scratch (steady-state zero-alloc; route_scratch_
  // growth after Start is charged to fanout.route_alloc).
  std::vector<uint64_t> route_scratch_;           // spatial query hits
  std::vector<ClientTable::Slot> dirty_scratch_;  // flush working set
  std::vector<SeqNum> ready_scratch_;             // per-slot partition
  std::vector<SeqNum> closure_included_;          // AppendClosure walk
  // Paced catch-up transfers (empty in burst mode and in steady state).
  std::vector<PendingCatchup> catchups_;
  bool catchup_timer_armed_ = false;
  int64_t flush_route_wall_ns_ = 0;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_SEVE_SERVER_H_
