#ifndef SEVE_PROTOCOL_MSG_H_
#define SEVE_PROTOCOL_MSG_H_

#include <cstdint>
#include <vector>

#include "action/action.h"
#include "net/message.h"
#include "store/object.h"
#include "sync/ibf.h"
#include "sync/strata.h"

namespace seve {

/// Message discriminators for the action-based protocols and baselines.
enum MsgKind : int {
  kSubmitAction = 1,   // client -> server: a freshly created action
  kDeliverActions = 2, // server -> client: ordered batch (Algorithms 2/5/6)
  kCompletion = 3,     // client -> server: stable result <a_i, u> (Alg. 4)
  kDropNotice = 4,     // server -> client: action dropped (Alg. 7)
  kCommitNotice = 5,   // server -> client: last installed pos (GC aid)

  // Crash/rejoin recovery (Section III-C):
  kRejoin = 6,           // client -> server: back from the dead
  kSnapshotRequest = 7,  // client -> server: send me a catch-up snapshot
  kSnapshotChunk = 8,    // server -> client: one slice of zeta_S + tail

  // Baseline architectures (100/101 were the central input/ack pair;
  // retired unsent, the numbers stay reserved):
  kObjectUpdate = 102,  // object-state push (Central/Broadcast/RING)

  // Ownership migration, client-facing leg (DESIGN.md §14). Numbered in
  // the shard migration block (320..) — see shard/shard_msg.h for the
  // shard-to-shard members — but defined here because SeveClient speaks
  // them: the protocol layer must not depend on shard headers.
  kRehome = 324,      // source shard -> client: switch your server to dest
  kRehomeAck = 325,   // client -> source shard: switched; source may drain
  kRehomeDone = 326,  // dest shard -> client: adopted; flush buffered actions

  // Set-reconciliation delta sync (DESIGN.md §15): O(diff) rejoin
  // catch-up and background anti-entropy. Defined here (not in a sync
  // header) for the same reason as the kRehome block: SeveClient speaks
  // them and the protocol layer must not grow new header dependencies.
  kSyncRequest = 330,     // initiator -> responder: strata estimator
  kSyncIBFRequest = 331,  // responder -> initiator: send an IBF this big
  kSyncIBF = 332,         // initiator -> responder: the sized filter
  kSyncDelta = 333,       // responder -> initiator: changed/missing objects
  kSyncNack = 334,        // responder -> initiator: unknown client, re-request
};

/// Which exchange a sync message belongs to; every kSync* body carries
/// one so the stateless responder knows how to finish the round.
enum SyncMode : uint8_t {
  kSyncModeRejoin = 0,    // client rejoin catch-up (replaces SnapshotRequest)
  kSyncModeAe = 1,        // client <-> home server anti-entropy tick
  kSyncModeOwnerMap = 2,  // shard <-> shard ownership-view anti-entropy
};

/// Client -> server: submit one action for serialization (Alg. 1 step 2 /
/// Alg. 4 step 2).
///
/// `resync` lets a client request authoritative values for objects it
/// cannot replay serially: the server folds them into the reply's
/// read-set closure (already-sent writers are re-delivered as stable
/// values). The default client relies on the audit-taint mechanism of
/// DESIGN.md §6 instead and sends an empty set; strict-replay clients
/// can populate it.
struct SubmitActionBody : MessageBody {
  ActionPtr action;
  ObjectSet resync;

  explicit SubmitActionBody(ActionPtr a, ObjectSet resync_set = {})
      : action(std::move(a)), resync(std::move(resync_set)) {}
  int kind() const override { return kSubmitAction; }
  int64_t WireSize() const {
    return 8 + action->WireSize() +
           static_cast<int64_t>(resync.size()) * 8;
  }
};

/// Server -> client: a pos-ordered batch of actions. In the basic
/// protocol this is the piggybacked reply (Alg. 2 step 4b); in the
/// Incomplete World / First Bound models it is the transitive-closure
/// reply or proactive push, whose head may be a blind write W(S, ζS(S)).
struct DeliverActionsBody : MessageBody {
  std::vector<OrderedAction> actions;

  int kind() const override { return kDeliverActions; }
  int64_t WireSize() const {
    int64_t size = 16;
    for (const OrderedAction& rec : actions) {
      size += 8 + rec.action->WireSize();
    }
    return size;
  }
};

/// Client -> server: completion message carrying the stable result of an
/// action (Alg. 4 step 5). Includes the written object values so the
/// server can install them into the authoritative state ζS (Alg. 5
/// step 5) without executing game logic itself.
struct CompletionBody : MessageBody {
  SeqNum pos = kInvalidSeq;
  ActionId action_id;
  ClientId from;
  ResultDigest digest = 0;
  /// The origin evaluated over inputs newer than serial order (rare; see
  /// DESIGN.md §6): the values still install, but the position is
  /// excluded from the serializability audit.
  bool out_of_order = false;
  std::vector<Object> written;

  int kind() const override { return kCompletion; }
  int64_t WireSize() const {
    int64_t size = 40;
    for (const Object& obj : written) size += obj.WireSize();
    return size;
  }
};

/// Server -> origin client: the action was dropped by the Information
/// Bound Model; the client must roll back its optimistic evaluation.
///
/// Carries a blind-write refresh of the dropped action's read set from
/// ζS. Without it a client can starve: it keeps declaring a stale
/// once-nearby avatar in its read sets, chaining to that avatar's distant
/// moves and getting dropped forever (the fairness hazard Section III-E
/// raises). Fresh values break the loop.
struct DropNoticeBody : MessageBody {
  ActionId action_id;
  SeqNum pos = kInvalidSeq;
  std::vector<Object> refresh;
  SeqNum refresh_pos = kInvalidSeq;  // commit frontier the values reflect

  int kind() const override { return kDropNotice; }
  int64_t WireSize() const {
    int64_t size = 32;
    for (const Object& obj : refresh) size += obj.WireSize();
    return size;
  }
};

/// Server -> client: everything up to `pos` is installed in ζS; the
/// client may garbage-collect bookkeeping for older actions (the memory
/// optimization of Section III-C).
struct CommitNoticeBody : MessageBody {
  SeqNum pos = kInvalidSeq;

  int kind() const override { return kCommitNotice; }
  int64_t WireSize() const { return 16; }
};

/// Client -> server: the client crashed and is rejoining. The server
/// resets the shared reliable-channel state (so pre-crash frames from
/// either side cannot resurface) and drops any queued pushes for the
/// client; the client follows up with a SnapshotRequest.
struct RejoinBody : MessageBody {
  ClientId client;

  int kind() const override { return kRejoin; }
  int64_t WireSize() const { return 16; }
};

/// Client -> server: request a full catch-up snapshot of ζS.
struct SnapshotRequestBody : MessageBody {
  ClientId client;

  int kind() const override { return kSnapshotRequest; }
  int64_t WireSize() const { return 16; }
};

/// Server -> client: one slice of the catch-up snapshot. The object
/// payload is ζS — semantically a batch of blind writes W(S, ζS(S)) at
/// the commit frontier `snapshot_pos` (Section III-C: state a rejoined
/// client may treat as authoritative). The final chunk additionally
/// carries the live tail: every still-uncommitted queue entry, with
/// completed entries substituted by blind writes of their stable results
/// exactly as ComputeClosure does, so replay from the snapshot converges
/// to the same digests as never-failed clients.
struct SnapshotChunkBody : MessageBody {
  SeqNum snapshot_pos = kInvalidSeq;  // commit frontier the values reflect
  int64_t chunk = 0;                  // 0-based chunk index
  int64_t total = 1;                  // chunk count; last carries the tail
  std::vector<Object> objects;
  std::vector<OrderedAction> tail;

  int kind() const override { return kSnapshotChunk; }
  int64_t WireSize() const {
    int64_t size = 32;
    for (const Object& obj : objects) size += obj.WireSize();
    for (const OrderedAction& rec : tail) size += 8 + rec.action->WireSize();
    return size;
  }
};

/// Source shard -> client: your avatar is moving to the shard at
/// `dest_node`; point your submissions there and ack so the source can
/// drain. The client buffers fresh submissions until RehomeDone.
struct RehomeBody : MessageBody {
  ObjectId object;
  ClientId client;
  uint64_t dest_node = 0;  // NodeId value of the destination shard
  uint64_t epoch = 0;
  int kind() const override { return kRehome; }
  int64_t WireSize() const { return 36; }
};

/// Client -> source shard: the client switched servers; everything it
/// sent before this ack is already in the source's queue (FIFO link), so
/// the source's drain wait now covers every straggler.
struct RehomeAckBody : MessageBody {
  ClientId client;
  ObjectId object;
  uint64_t epoch = 0;
  int kind() const override { return kRehomeAck; }
  int64_t WireSize() const { return 28; }
};

/// Destination shard -> client: the adoption installed; the client flushes
/// its buffered submissions into the new shard's stream.
struct RehomeDoneBody : MessageBody {
  ClientId client;
  ObjectId object;
  int kind() const override { return kRehomeDone; }
  int64_t WireSize() const { return 20; }
};

/// Initiator -> responder: open a reconciliation round. Carries a strata
/// estimator over the initiator's (object id, content hash) summary so
/// the responder can size the IBF it asks for. `client` identifies the
/// initiator (the ClientId for rejoin/AE rounds, the shard id for
/// owner-map rounds).
struct SyncRequestBody : MessageBody {
  ClientId client;
  uint8_t mode = kSyncModeRejoin;
  sync::StrataEstimator strata;

  int kind() const override { return kSyncRequest; }
  int64_t WireSize() const { return 17 + strata.WireBytes(); }
};

/// Responder -> initiator: the estimated difference needs a filter of
/// `cells` cells; send your IBF.
struct SyncIBFRequestBody : MessageBody {
  ClientId client;
  uint8_t mode = kSyncModeRejoin;
  int64_t cells = 0;

  int kind() const override { return kSyncIBFRequest; }
  int64_t WireSize() const { return 25; }
};

/// Initiator -> responder: the sized filter over the initiator's summary.
struct SyncIBFBody : MessageBody {
  ClientId client;
  uint8_t mode = kSyncModeRejoin;
  sync::Ibf ibf;

  int kind() const override { return kSyncIBF; }
  int64_t WireSize() const { return 17 + ibf.WireBytes(); }
};

/// Responder -> initiator: the decoded delta. For rejoin rounds this is
/// the O(diff) replacement for the snapshot stream: `objects` are the
/// changed/missing objects at commit frontier `snapshot_pos`, `removed`
/// the ids the initiator must drop, and the final chunk carries the live
/// tail exactly like SnapshotChunk. AE rounds ship one chunk and no
/// tail; owner-map rounds list the divergent object ids in `removed`.
struct SyncDeltaBody : MessageBody {
  ClientId client;
  uint8_t mode = kSyncModeRejoin;
  SeqNum snapshot_pos = kInvalidSeq;
  int64_t chunk = 0;
  int64_t total = 1;
  std::vector<Object> objects;
  std::vector<ObjectId> removed;
  std::vector<OrderedAction> tail;

  int kind() const override { return kSyncDelta; }
  int64_t WireSize() const {
    int64_t size = 41 + static_cast<int64_t>(removed.size()) * 8;
    for (const Object& obj : objects) size += obj.WireSize();
    for (const OrderedAction& rec : tail) size += 8 + rec.action->WireSize();
    return size;
  }
};

/// Responder -> initiator: the responder does not know this client (a
/// catch-up request raced registration); the initiator should back off
/// and re-request instead of waiting forever.
struct SyncNackBody : MessageBody {
  ClientId client;
  uint8_t mode = kSyncModeRejoin;

  int kind() const override { return kSyncNack; }
  int64_t WireSize() const { return 17; }
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_MSG_H_
