#include "protocol/server_queue.h"

#include <algorithm>

namespace seve {

SeqNum ServerQueue::Append(ActionPtr action, VirtualTime now) {
  const SeqNum pos = end_pos();
  Entry entry;
  entry.pos = pos;
  entry.action = std::move(action);
  entry.submitted_at = now;
  for (ObjectId id : entry.action->WriteSet()) {
    // Writer chains are InlineVec<SeqNum, 4>: short chains (the common
    // case) never touch the heap, and the lazy prune in
    // GreatestWriterBelow keeps long ones bounded.
    writers_[id].push_back(pos);  // seve-lint: allow(hot-vector-realloc): InlineVec inline capacity
  }
  entries_.push_back(std::move(entry));  // seve-lint: allow(hot-vector-realloc): std::deque has no reserve
  return pos;
}

ServerQueue::Entry* ServerQueue::Find(SeqNum pos) {
  if (pos < base_ || pos >= end_pos()) return nullptr;
  return &entries_[IndexOf(pos)];
}

const ServerQueue::Entry* ServerQueue::Find(SeqNum pos) const {
  if (pos < base_ || pos >= end_pos()) return nullptr;
  return &entries_[IndexOf(pos)];
}

SeqNum ServerQueue::GreatestWriterBelow(ObjectId id, SeqNum below) const {
  WriterChain* positions = writers_.Find(id);
  if (positions == nullptr) return kInvalidSeq;
  SeqNum* first_live =
      std::lower_bound(positions->begin(), positions->end(), base_);
  if (first_live == positions->end()) {
    // Every writer of this object has committed: drop the chain outright
    // (backward-shift erase, no tombstone left in the table).
    writers_.Erase(id);
    ++writer_prunes_;
    return kInvalidSeq;
  }
  // Lazy prune of the committed prefix (amortized O(1) per append): only
  // pay the memmove once the dead prefix outweighs the live suffix.
  const size_t dead = static_cast<size_t>(first_live - positions->begin());
  if (dead > 0 && dead * 2 > positions->size()) {
    positions->EraseFront(dead);
    ++writer_prunes_;
    first_live = positions->begin();
  }
  SeqNum* candidate = std::lower_bound(first_live, positions->end(), below);
  if (candidate == first_live) return kInvalidSeq;
  --candidate;
  return *candidate >= base_ ? *candidate : kInvalidSeq;
}

void ServerQueue::MarkInvalid(SeqNum pos) {
  Entry* entry = Find(pos);
  if (entry != nullptr) entry->valid = false;
}

bool ServerQueue::HasUncommittedWriter(ObjectId id) const {
  const WriterChain* positions = writers_.Find(id);
  if (positions == nullptr) return false;
  // The chain is ascending; suffix entries at/above base_ are still in
  // the queue. Invalid entries don't count (their install is skipped),
  // but completed-waiting-for-frontier ones do.
  for (auto it = positions->end(); it != positions->begin();) {
    --it;
    if (*it < base_) break;
    const Entry* entry = Find(*it);
    if (entry != nullptr && entry->valid) return true;
  }
  return false;
}

SeqNum ServerQueue::NoteMovementAppend(SeqNum pos, ClientId origin) {
  SeqNum* last = last_move_pos_.Find(origin);
  const SeqNum prev = last == nullptr ? kInvalidSeq : *last;
  last_move_pos_[origin] = pos;
  if (prev == kInvalidSeq) return kInvalidSeq;
  const Entry* entry = Find(prev);
  if (entry == nullptr || !entry->valid || entry->completed) {
    return kInvalidSeq;
  }
  // Never recall: once any replica holds the predecessor, its optimistic
  // effects are out in the world and it must serialize normally.
  if (!entry->sent.empty()) return kInvalidSeq;
  if (!entry->action->IsMovement()) return kInvalidSeq;
  return prev;
}

size_t ServerQueue::WriterChainLengthForTest(ObjectId id) const {
  const WriterChain* chain = writers_.Find(id);
  return chain != nullptr ? chain->size() : 0;
}

std::vector<SeqNum> ServerQueue::Complete(
    SeqNum pos, ResultDigest digest, std::vector<Object> written,
    const std::function<void(const Entry&)>& install) {
  Entry* entry = Find(pos);
  if (entry != nullptr && !entry->completed) {
    entry->completed = true;
    entry->stable_digest = digest;
    entry->stable_written = std::move(written);
  }
  // Advance the frontier (Algorithm 5 step 5: install once ζS(i-1) is
  // available, i.e. once every earlier action is installed or dropped).
  std::vector<SeqNum> installed;
  while (!entries_.empty()) {
    Entry& head = entries_.front();
    if (head.valid && !head.completed) break;
    if (head.valid) {
      install(head);
      // Usually 0-1 entries per completion; the frontier advances one
      // head at a time except after a long invalid prefix.
      installed.push_back(head.pos);  // seve-lint: allow(hot-vector-realloc): near-empty in steady state
    }
    entries_.pop_front();
    ++base_;
  }
  return installed;
}

}  // namespace seve
