#include "protocol/server_queue.h"

#include <algorithm>
#include <queue>

namespace seve {

SeqNum ServerQueue::Append(ActionPtr action, VirtualTime now) {
  const SeqNum pos = end_pos();
  Entry entry;
  entry.pos = pos;
  entry.action = std::move(action);
  entry.submitted_at = now;
  for (ObjectId id : entry.action->WriteSet()) {
    writers_[id].push_back(pos);
  }
  entries_.push_back(std::move(entry));
  return pos;
}

ServerQueue::Entry* ServerQueue::Find(SeqNum pos) {
  if (pos < base_ || pos >= end_pos()) return nullptr;
  return &entries_[IndexOf(pos)];
}

const ServerQueue::Entry* ServerQueue::Find(SeqNum pos) const {
  if (pos < base_ || pos >= end_pos()) return nullptr;
  return &entries_[IndexOf(pos)];
}

SeqNum ServerQueue::GreatestWriterBelow(ObjectId id, SeqNum below) const {
  auto it = writers_.find(id);
  if (it == writers_.end()) return kInvalidSeq;
  std::vector<SeqNum>& positions = it->second;
  // Lazy prune of committed prefix (amortized O(1) per append).
  auto first_live = std::lower_bound(positions.begin(), positions.end(), base_);
  if (first_live != positions.begin() &&
      static_cast<size_t>(first_live - positions.begin()) * 2 >
          positions.size()) {
    positions.erase(positions.begin(), first_live);
    first_live = positions.begin();
  }
  auto candidate = std::lower_bound(first_live, positions.end(), below);
  if (candidate == first_live) return kInvalidSeq;
  --candidate;
  return *candidate >= base_ ? *candidate : kInvalidSeq;
}

int ServerQueue::WalkConflicts(
    SeqNum start_pos, ObjectSet* read_set,
    const std::function<WalkVerdict(const Entry&)>& visitor) const {
  // Max-heap of (candidate position, object) pairs; each object's writer
  // chain is enumerated in descending pos order, so globally entries are
  // visited in descending order as Algorithms 6 and 7 require.
  using Candidate = std::pair<SeqNum, ObjectId>;
  std::priority_queue<Candidate> heap;

  auto seed = [&](ObjectId id, SeqNum below) {
    const SeqNum writer = GreatestWriterBelow(id, below);
    if (writer != kInvalidSeq) heap.push({writer, id});
  };
  for (ObjectId id : *read_set) seed(id, start_pos);

  std::unordered_set<SeqNum> visited;
  int visits = 0;
  while (!heap.empty()) {
    const auto [pos, obj] = heap.top();
    heap.pop();
    // Continue this object's chain regardless of the verdict below.
    if (read_set->Contains(obj)) seed(obj, pos);
    if (visited.count(pos) != 0) continue;
    const Entry* entry = Find(pos);
    if (entry == nullptr || !entry->valid) continue;
    if (!read_set->Contains(obj)) continue;  // object resolved meanwhile
    if (!entry->action->WriteSet().Intersects(*read_set)) continue;
    visited.insert(pos);
    ++visits;

    const WalkVerdict verdict = visitor(*entry);
    if (verdict == WalkVerdict::kStop) break;
    if (verdict == WalkVerdict::kResolve) {
      read_set->SubtractWith(entry->action->WriteSet());
    } else if (verdict == WalkVerdict::kInclude) {
      // S ← S ∪ RS(a_j); new objects contribute their own writer chains.
      for (ObjectId id : entry->action->ReadSet()) {
        if (!read_set->Contains(id)) {
          read_set->Insert(id);
          seed(id, pos);
        }
      }
    }
  }
  return visits;
}

void ServerQueue::MarkInvalid(SeqNum pos) {
  Entry* entry = Find(pos);
  if (entry != nullptr) entry->valid = false;
}

std::vector<SeqNum> ServerQueue::Complete(
    SeqNum pos, ResultDigest digest, std::vector<Object> written,
    const std::function<void(const Entry&)>& install) {
  Entry* entry = Find(pos);
  if (entry != nullptr && !entry->completed) {
    entry->completed = true;
    entry->stable_digest = digest;
    entry->stable_written = std::move(written);
  }
  // Advance the frontier (Algorithm 5 step 5: install once ζS(i-1) is
  // available, i.e. once every earlier action is installed or dropped).
  std::vector<SeqNum> installed;
  while (!entries_.empty()) {
    Entry& head = entries_.front();
    if (head.valid && !head.completed) break;
    if (head.valid) {
      install(head);
      installed.push_back(head.pos);
    }
    entries_.pop_front();
    ++base_;
  }
  return installed;
}

}  // namespace seve
