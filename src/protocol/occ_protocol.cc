// seve-lint: allow-file(hot-vector-realloc): Section II baseline path,
// not on the SEVE fan-out hot path this rule protects.
#include "protocol/occ_protocol.h"

#include <memory>

#include "protocol/msg.h"
#include "protocol/pending_queue.h"

namespace seve {

OccServer::OccServer(NodeId node, EventLoop* loop, WorldState initial,
                     const CostModel& cost)
    : Node(node, loop), state_(std::move(initial)), cost_(cost) {}

void OccServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = node;
  client_order_.push_back(client);
}

void OccServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kOccSubmit) return;
  const auto submit = std::static_pointer_cast<const OccSubmitBody>(msg.body);
  if (submit->attempt == 1) ++stats_.actions_submitted;
  SubmitWork(cost_.serialize_us, [this, submit]() {
    Certify(*submit, submit->action->origin());
  });
}

void OccServer::Certify(const OccSubmitBody& submit, ClientId origin) {
  const NodeId* origin_node = clients_.Find(origin);
  if (origin_node == nullptr) return;

  // Validation: every read version must still be current.
  bool stale = false;
  for (const auto& [id, version] : submit.read_versions) {
    const SeqNum* v = versions_.Find(id);
    const SeqNum current = v != nullptr ? *v : kInvalidSeq;
    if (current != version) {
      stale = true;
      break;
    }
  }

  auto verdict = std::make_shared<OccVerdictBody>();
  verdict->action_id = submit.action->id();
  if (stale) {
    ++aborts_;
    verdict->committed = false;
    // Refresh the stale read set so the retry starts from current state.
    verdict->refresh = state_.Extract(submit.action->ReadSet());
    for (ObjectId id : submit.action->ReadSet()) {
      const SeqNum* v = versions_.Find(id);
      verdict->refresh_versions.emplace_back(
          id, v != nullptr ? *v : kInvalidSeq);
    }
    Send(*origin_node, verdict->WireSize(), verdict);
    return;
  }

  // Commit: install values, bump versions, broadcast the effect.
  const SeqNum pos = next_pos_++;
  state_.ApplyObjects(submit.written);
  committed_digests_[pos] = submit.digest;
  ++stats_.actions_committed;
  auto effect = std::make_shared<OccEffectBody>();
  effect->pos = pos;
  effect->digest = submit.digest;
  effect->written = submit.written;
  for (ObjectId id : submit.action->WriteSet()) {
    versions_[id] = pos;
    effect->versions.emplace_back(id, pos);
  }
  verdict->committed = true;
  verdict->pos = pos;
  Send(*origin_node, verdict->WireSize(), verdict);
  for (ClientId client : client_order_) {
    if (client == origin) continue;
    Send(*clients_.Find(client), effect->WireSize(), effect);
  }
}

OccClient::OccClient(NodeId node, EventLoop* loop, ClientId client,
                     NodeId server, WorldState initial, ActionCostFn cost_fn,
                     Micros install_us, int max_attempts)
    : Node(node, loop),
      client_(client),
      server_(server),
      state_(std::move(initial)),
      cost_fn_(std::move(cost_fn)),
      install_us_(install_us),
      max_attempts_(max_attempts) {}

void OccClient::SubmitLocalAction(ActionPtr action) {
  submitted_at_[action->id()] = loop()->now();
  ++stats_.actions_submitted;
  Attempt(std::move(action), 1);
}

void OccClient::Attempt(ActionPtr action, int attempt) {
  const Micros cost = cost_fn_(*action, state_);
  SubmitWork(cost, [this, action = std::move(action), attempt]() {
    // Tentative execution on a scratch copy restricted to the write set:
    // OCC state only advances on commit.
    WorldState scratch = state_;
    const ResultDigest digest = EvaluateAction(*action, &scratch);
    auto body = std::make_shared<OccSubmitBody>();
    body->action = action;
    body->digest = digest;
    body->attempt = attempt;
    if (digest != kConflictDigest) {
      body->written = scratch.Extract(action->WriteSet());
    }
    in_flight_[action->id()] = Pending{action, attempt, digest,
                                       body->written};
    for (ObjectId id : action->ReadSet()) {
      const SeqNum* v = versions_.Find(id);
      body->read_versions.emplace_back(id, v != nullptr ? *v : kInvalidSeq);
    }
    Send(server_, body->WireSize(), body);
  });
}

void OccClient::OnMessage(const Message& msg) {
  switch (msg.body->kind()) {
    case kOccVerdict: {
      const auto verdict =
          std::static_pointer_cast<const OccVerdictBody>(msg.body);
      SubmitWork(install_us_, [this, verdict]() {
        Pending* pending_rec = in_flight_.Find(verdict->action_id);
        if (pending_rec == nullptr) return;
        if (verdict->committed) {
          const VirtualTime* at = submitted_at_.Find(verdict->action_id);
          if (at != nullptr) {
            stats_.response_time_us.Add(loop()->now() - *at);
            submitted_at_.Erase(verdict->action_id);
          }
          ++stats_.actions_evaluated;
          // Install the exact values the server committed (re-executing
          // here could diverge if foreign effects landed meanwhile).
          state_.ApplyObjects(pending_rec->written);
          eval_digests_[verdict->pos] = pending_rec->last_digest;
          for (ObjectId id : pending_rec->action->WriteSet()) {
            versions_[id] = verdict->pos;
          }
          in_flight_.Erase(verdict->action_id);
          return;
        }
        // Abort: refresh from the verdict and retry (bounded).
        state_.ApplyObjects(verdict->refresh);
        for (const auto& [id, version] : verdict->refresh_versions) {
          versions_[id] = version;
        }
        Pending pending = std::move(*pending_rec);
        in_flight_.Erase(verdict->action_id);
        if (pending.attempt >= max_attempts_) {
          ++gave_up_;
          submitted_at_.Erase(verdict->action_id);
          return;
        }
        ++retries_;
        Attempt(pending.action, pending.attempt + 1);
      });
      break;
    }
    case kOccEffect: {
      const auto effect =
          std::static_pointer_cast<const OccEffectBody>(msg.body);
      SubmitWork(install_us_, [this, effect]() {
        state_.ApplyObjects(effect->written);
        for (const auto& [id, version] : effect->versions) {
          versions_[id] = version;
        }
        eval_digests_[effect->pos] = effect->digest;
      });
      break;
    }
    default:
      break;
  }
}

}  // namespace seve
