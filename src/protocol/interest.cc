#include "protocol/interest.h"

#include <algorithm>

namespace seve {

InterestModel::InterestModel(double max_speed, Micros rtt_us, double omega,
                             bool velocity_culling, bool interest_classes)
    : max_speed_(max_speed),
      rtt_us_(rtt_us),
      omega_(omega),
      velocity_culling_(velocity_culling),
      interest_classes_(interest_classes) {
  const double rtt_sec =
      static_cast<double>(rtt_us) / static_cast<double>(kMicrosPerSecond);
  reach_ = 2.0 * max_speed_ * (1.0 + omega_) * rtt_sec;
}

bool InterestModel::MayAffect(const InterestProfile& action,
                              VirtualTime action_time,
                              const InterestProfile& client,
                              VirtualTime client_time) const {
  // Section IV-A: inconsequential action elimination. A client only cares
  // about actions whose class intersects its subscription mask.
  if (interest_classes_ &&
      (action.interest_class & client.interest_class) == 0) {
    return false;
  }

  if (velocity_culling_) {
    // Section IV-B: project the action's area of influence along its
    // velocity to the client's observation time; the action radius moves
    // to the left-hand side of the equation. The projection window is
    // clamped to (1+ω)RTT — the horizon the bound is valid for — so a
    // long-idle client profile cannot fling the projection arbitrarily.
    const double horizon_sec =
        (1.0 + omega_) * static_cast<double>(rtt_us_) /
        static_cast<double>(kMicrosPerSecond);
    const double dt_sec = std::clamp(
        static_cast<double>(action_time - client_time) /
            static_cast<double>(kMicrosPerSecond),
        0.0, horizon_sec);
    // The rM term is folded into the projected center (the paper moves it
    // to the left-hand side): bound = 2s(1+ω)RTT + rC.
    const Vec2 projected = action.PositionAt(dt_sec);
    const double bound = reach_ + client.radius;
    return DistanceSq(projected, client.position) <= bound * bound;
  }

  const double bound = Bound(action.radius, client.radius);
  return DistanceSq(action.position, client.position) <= bound * bound;
}

}  // namespace seve
