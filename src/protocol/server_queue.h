#ifndef SEVE_PROTOCOL_SERVER_QUEUE_H_
#define SEVE_PROTOCOL_SERVER_QUEUE_H_

#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "action/action.h"
#include "store/object.h"
#include "store/rw_set.h"

namespace seve {

/// The server's global action queue (Algorithms 2 and 5): a committed
/// frontier plus the suffix of uncommitted actions, with the per-action
/// bookkeeping the protocols need — sent(a) per client, Algorithm 7's
/// isValid flag, and the stable results delivered by completion messages.
///
/// Conflict chains are discovered through a per-object writer index, so a
/// transitive-closure walk costs O(chain) heap operations instead of
/// O(queue) scans; the caller charges simulated CPU per visit, which is
/// how the implementation reproduces the paper's ~0.04 ms closure cost
/// independent of client count.
class ServerQueue {
 public:
  struct Entry {
    SeqNum pos = kInvalidSeq;
    ActionPtr action;
    VirtualTime submitted_at = 0;
    std::unordered_set<ClientId> sent;  // the paper's sent(a)
    bool valid = true;                  // Algorithm 7's isValid
    bool completed = false;
    ResultDigest stable_digest = 0;
    std::vector<Object> stable_written;
  };

  /// What the conflict-walk visitor decides for an intersecting entry.
  enum class WalkVerdict {
    kInclude,  // S ← S ∪ RS(a_j); prepend a_j (Algorithm 6 "not sent")
    kResolve,  // S ← S \ WS(a_j)              (Algorithm 6 "already sent")
    kSkip,     // leave S unchanged, keep walking
    kStop,     // abort the walk               (Algorithm 7 threshold hit)
  };

  ServerQueue() = default;

  /// Appends a freshly submitted action; returns its pos(a).
  SeqNum Append(ActionPtr action, VirtualTime now);

  /// Entry at `pos`; nullptr if committed, dropped-and-popped, or unknown.
  Entry* Find(SeqNum pos);
  const Entry* Find(SeqNum pos) const;

  /// First uncommitted position (the paper's j+1 in Algorithm 5 step 3).
  SeqNum begin_pos() const { return base_; }
  /// One past the newest position.
  SeqNum end_pos() const { return base_ + static_cast<SeqNum>(entries_.size()); }
  size_t uncommitted_size() const { return entries_.size(); }

  /// Walks valid uncommitted entries in descending pos order starting
  /// strictly below `start_pos`, visiting exactly those whose write set
  /// intersects the evolving read set *S — the shared skeleton of
  /// Algorithm 6 (transitive closure) and Algorithm 7 (chain breaking).
  /// Returns the number of entries visited (for CPU-cost accounting).
  int WalkConflicts(
      SeqNum start_pos, ObjectSet* read_set,
      const std::function<WalkVerdict(const Entry&)>& visitor) const;

  /// Algorithm 7: marks an entry dropped. Dropped entries are skipped by
  /// WalkConflicts and discarded when they reach the frontier.
  void MarkInvalid(SeqNum pos);

  /// Records the stable result for `pos` (Algorithm 5 step 5). Then
  /// advances the committed frontier: pops entries while the head is
  /// completed or invalid, calling `install` for each valid popped entry
  /// (in order) so the caller can fold the values into ζS. Returns the
  /// installed positions.
  std::vector<SeqNum> Complete(
      SeqNum pos, ResultDigest digest, std::vector<Object> written,
      const std::function<void(const Entry&)>& install);

 private:
  size_t IndexOf(SeqNum pos) const {
    return static_cast<size_t>(pos - base_);
  }
  /// Greatest writer position of `id` strictly below `below`; kInvalidSeq
  /// if none remains uncommitted.
  SeqNum GreatestWriterBelow(ObjectId id, SeqNum below) const;

  SeqNum base_ = 0;  // pos of entries_.front()
  std::deque<Entry> entries_;
  // Object -> ascending positions of uncommitted writers. Pruned lazily.
  mutable std::unordered_map<ObjectId, std::vector<SeqNum>> writers_;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_SERVER_QUEUE_H_
