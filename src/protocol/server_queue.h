#ifndef SEVE_PROTOCOL_SERVER_QUEUE_H_
#define SEVE_PROTOCOL_SERVER_QUEUE_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "action/action.h"
#include "common/flat_map.h"
#include "common/inline_vec.h"
#include "store/object.h"
#include "store/rw_set.h"

namespace seve {

/// The server's global action queue (Algorithms 2 and 5): a committed
/// frontier plus the suffix of uncommitted actions, with the per-action
/// bookkeeping the protocols need — sent(a) per client, Algorithm 7's
/// isValid flag, and the stable results delivered by completion messages.
///
/// Conflict chains are discovered through a per-object writer index
/// (an open-addressing FlatMap of writer-position chains, pruned lazily
/// past the committed frontier), so a transitive-closure walk costs
/// O(chain) heap operations instead of O(queue) scans; the caller
/// charges simulated CPU per visit, which is how the implementation
/// reproduces the paper's ~0.04 ms closure cost independent of client
/// count.
///
/// Walk hot-path layout (the PR 2 grid-index recipe applied to the
/// protocol layer): visited entries are deduplicated with per-entry
/// epoch stamps instead of a heap-allocated hash set, membership of
/// the evolving closure set S is answered from epoch-stamped side
/// storage (O(1) instead of binary searches whose signature prefilter
/// saturates on deep chains), closure growth is folded into S in
/// batched sorted merges, the candidate heap lives in inline storage,
/// and the visitor is a template parameter so per-visit dispatch
/// inlines instead of going through std::function.
class ServerQueue {
 public:
  struct Entry {
    SeqNum pos = kInvalidSeq;
    ActionPtr action;
    VirtualTime submitted_at = 0;
    // Membership-only (never iterated): bucket order is unobservable.
    // seve-lint: allow(det-unordered-container): membership test only
    std::unordered_set<ClientId> sent;  // the paper's sent(a)
    bool valid = true;                  // Algorithm 7's isValid
    bool completed = false;
    ResultDigest stable_digest = 0;
    std::vector<Object> stable_written;
    // Walk-time dedup stamp; mutable because walks are logically const.
    mutable uint64_t visit_stamp = 0;
  };

  /// What the conflict-walk visitor decides for an intersecting entry.
  enum class WalkVerdict {
    kInclude,  // S ← S ∪ RS(a_j); prepend a_j (Algorithm 6 "not sent")
    kResolve,  // S ← S \ WS(a_j)              (Algorithm 6 "already sent")
    kSkip,     // leave S unchanged, keep walking
    kStop,     // abort the walk               (Algorithm 7 threshold hit)
  };

  ServerQueue() = default;

  /// Appends a freshly submitted action; returns its pos(a).
  SeqNum Append(ActionPtr action, VirtualTime now);

  /// Entry at `pos`; nullptr if committed, dropped-and-popped, or unknown.
  Entry* Find(SeqNum pos);
  const Entry* Find(SeqNum pos) const;

  /// First uncommitted position (the paper's j+1 in Algorithm 5 step 3).
  SeqNum begin_pos() const { return base_; }
  /// One past the newest position.
  SeqNum end_pos() const { return base_ + static_cast<SeqNum>(entries_.size()); }
  size_t uncommitted_size() const { return entries_.size(); }

  /// Walks valid uncommitted entries in descending pos order starting
  /// strictly below `start_pos`, visiting exactly those whose write set
  /// intersects the evolving read set *S — the shared skeleton of
  /// Algorithm 6 (transitive closure) and Algorithm 7 (chain breaking).
  /// Returns the number of entries visited (for CPU-cost accounting).
  ///
  /// `visitor` is invoked as WalkVerdict(const Entry&); the template
  /// keeps the per-visit call inlineable (no std::function).
  template <typename Visitor>
  int WalkConflicts(SeqNum start_pos, ObjectSet* read_set,
                    Visitor&& visitor) const {
    // Max-heap of (candidate position, object) pairs; each object's
    // writer chain is enumerated in descending pos order, so globally
    // entries are visited in descending order as Algorithms 6 and 7
    // require.
    struct Candidate {
      SeqNum pos;
      ObjectId obj;
      bool operator<(const Candidate& o) const {
        return pos < o.pos || (pos == o.pos && obj < o.obj);
      }
    };
    InlineVec<Candidate, 32> heap;
    auto seed = [this, &heap](ObjectId id, SeqNum below) {
      const SeqNum writer = GreatestWriterBelow(id, below);
      if (writer != kInvalidSeq) {
        heap.push_back(Candidate{writer, id});  // seve-lint: allow(hot-vector-realloc): InlineVec inline capacity
        std::push_heap(heap.begin(), heap.end());
      }
    };

    const uint64_t epoch = ++walk_epoch_;
    // Epoch-stamped membership mirror of S: stamp == epoch means "in S
    // right now". Stamps are reused across walks (stale stamps never
    // match), so membership tests are O(1) — one load for the dense id
    // range — instead of binary searches over the growing closure set,
    // with no per-walk clearing and no steady-state allocation. The
    // closure read sets of deep chains saturate the 64-bit signature,
    // which is exactly when the sorted-set Contains path degrades — the
    // stamps don't.
    auto sig_bit = [](ObjectId id) {
      return uint64_t{1} << (id.value() & 63u);
    };
    uint64_t member_sig = 0;
    for (ObjectId id : *read_set) {
      WalkStamp(id, epoch);
      member_sig |= sig_bit(id);
      seed(id, start_pos);
    }
    auto member = [this, epoch](ObjectId id) {
      return WalkMember(id, epoch);
    };
    // Closure additions are batched and folded into *read_set with one
    // sorted merge instead of one memmove per id. kResolve subtracts
    // from the full set, so it flushes first.
    InlineVec<ObjectId, 32> added;
    auto flush_added = [read_set, &added]() {
      if (added.empty()) return;
      std::sort(added.begin(), added.end());
      read_set->UnionWithSorted(added.begin(), added.size());
      added.clear();
    };

    int visits = 0;
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end());
      const SeqNum pos = heap.back().pos;
      const ObjectId obj = heap.back().obj;
      heap.pop_back();
      const bool obj_in_s = member(obj);
      // Continue this object's chain regardless of the verdict below.
      if (obj_in_s) seed(obj, pos);
      const Entry* entry = Find(pos);
      if (entry == nullptr || !entry->valid) continue;
      if (entry->visit_stamp == epoch) continue;  // already visited
      if (!obj_in_s) continue;  // object resolved meanwhile
      // WS(a_j) ∩ S, answered from the membership stamps. Reported
      // through the same counters as ObjectSet::Intersects so the bench
      // kernel telemetry stays comparable across paths. member_sig is a
      // monotone superset of sig(S) (bits are never cleared on resolve),
      // which keeps the prefilter sound: zero overlap proves disjoint.
      {
        ObjectSetCounters& counters = GetObjectSetCounters();
        ++counters.intersect_calls;
        const ObjectSet& write_set = entry->action->WriteSet();
        if ((write_set.signature() & member_sig) == 0) {
          ++counters.sig_rejects;
          continue;
        }
        bool hit = false;
        for (ObjectId id : write_set) {
          if (member(id)) {
            hit = true;
            break;
          }
        }
        if (!hit) continue;
      }
      entry->visit_stamp = epoch;
      ++visits;

      const WalkVerdict verdict = visitor(*entry);
      if (verdict == WalkVerdict::kStop) break;
      if (verdict == WalkVerdict::kResolve) {
        flush_added();
        read_set->SubtractWith(entry->action->WriteSet());
        for (ObjectId id : entry->action->WriteSet()) {
          WalkUnstamp(id);
        }
      } else if (verdict == WalkVerdict::kInclude) {
        // S ← S ∪ RS(a_j); new objects contribute their own writer
        // chains.
        for (ObjectId id : entry->action->ReadSet()) {
          if (!member(id)) {
            WalkStamp(id, epoch);
            member_sig |= sig_bit(id);
            added.push_back(id);  // seve-lint: allow(hot-vector-realloc): InlineVec inline capacity
            seed(id, pos);
          }
        }
      }
    }
    flush_added();
    walk_visits_total_ += static_cast<uint64_t>(visits);
    return visits;
  }

  /// Algorithm 7: marks an entry dropped. Dropped entries are skipped by
  /// WalkConflicts and discarded when they reach the frontier.
  void MarkInvalid(SeqNum pos);

  /// True while any uncommitted entry writes `id`. Completed-but-not-yet-
  /// installed entries count: their install would re-materialize the
  /// object. The ownership-migration drain wait (shard/shard_server.cc)
  /// polls this before moving an object's authoritative record.
  bool HasUncommittedWriter(ObjectId id) const;

  /// Updatable-queue bookkeeping (SeveOptions::move_supersession): call
  /// right after Append(pos) of a movement action. Updates the
  /// per-origin newest-movement index and returns the origin's previous
  /// queued movement position iff that predecessor is still valid,
  /// uncompleted, itself a movement, and was never sent to any client —
  /// i.e. it can be dropped without recalling anything from a replica.
  /// Returns kInvalidSeq otherwise. Callers that never invoke this pay
  /// nothing; the data path is untouched when the knob is off.
  SeqNum NoteMovementAppend(SeqNum pos, ClientId origin);

  /// Records the stable result for `pos` (Algorithm 5 step 5). Then
  /// advances the committed frontier: pops entries while the head is
  /// completed or invalid, calling `install` for each valid popped entry
  /// (in order) so the caller can fold the values into ζS. Returns the
  /// installed positions.
  std::vector<SeqNum> Complete(
      SeqNum pos, ResultDigest digest, std::vector<Object> written,
      const std::function<void(const Entry&)>& install);

  /// Kernel counters for bench telemetry / regression tests.
  uint64_t walk_visits_total() const { return walk_visits_total_; }
  uint64_t writer_prunes() const { return writer_prunes_; }
  /// Stored (possibly not-yet-pruned) writer-chain length for `id`; test
  /// hook for the lazy-prune regression coverage.
  size_t WriterChainLengthForTest(ObjectId id) const;

 private:
  using WriterChain = InlineVec<SeqNum, 4>;

  size_t IndexOf(SeqNum pos) const {
    return static_cast<size_t>(pos - base_);
  }

  // Walk-membership stamps. Object ids in practice are small and dense
  // (avatars, walls), so the common path is a direct-indexed stamp
  // array — one load per membership test; ids past the dense limit go
  // to an overflow map so pathological ids can't balloon the array.
  static constexpr uint64_t kDenseStampLimit = uint64_t{1} << 20;
  bool WalkMember(ObjectId id, uint64_t epoch) const {
    const uint64_t v = id.value();
    if (v < walk_stamps_.size()) return walk_stamps_[v] == epoch;
    if (v < kDenseStampLimit) return false;  // never stamped
    const uint64_t* stamp = walk_overflow_stamps_.Find(id);
    return stamp != nullptr && *stamp == epoch;
  }
  void WalkStamp(ObjectId id, uint64_t epoch) const {
    const uint64_t v = id.value();
    if (v < kDenseStampLimit) {
      if (v >= walk_stamps_.size()) {
        size_t n = walk_stamps_.empty() ? 64 : walk_stamps_.size();
        while (n <= v) n *= 2;
        walk_stamps_.resize(n, 0);
      }
      walk_stamps_[v] = epoch;
    } else {
      walk_overflow_stamps_[id] = epoch;
    }
  }
  void WalkUnstamp(ObjectId id) const {
    const uint64_t v = id.value();
    if (v < walk_stamps_.size()) {
      walk_stamps_[v] = 0;
    } else if (v >= kDenseStampLimit) {
      walk_overflow_stamps_.Erase(id);
    }
  }
  /// Greatest writer position of `id` strictly below `below`; kInvalidSeq
  /// if none remains uncommitted.
  SeqNum GreatestWriterBelow(ObjectId id, SeqNum below) const;

  SeqNum base_ = 0;  // pos of entries_.front()
  std::deque<Entry> entries_;
  // Newest movement position per origin; only populated when the server
  // runs with move_supersession (see NoteMovementAppend).
  FlatMap<ClientId, SeqNum> last_move_pos_;
  // Object -> ascending positions of uncommitted writers. Pruned lazily:
  // the committed prefix of a chain is erased when it outweighs the live
  // suffix, and a fully committed chain is dropped from the map (the
  // FlatMap's backward-shift erase leaves no tombstone behind).
  mutable FlatMap<ObjectId, WriterChain> writers_;
  // Walk-time membership stamps for the evolving closure set S; an id is
  // a member iff its stamp equals the current walk epoch. Never cleared —
  // stale stamps are simply from older epochs.
  mutable std::vector<uint64_t> walk_stamps_;
  mutable FlatMap<ObjectId, uint64_t> walk_overflow_stamps_;
  mutable uint64_t walk_epoch_ = 0;
  mutable uint64_t walk_visits_total_ = 0;
  mutable uint64_t writer_prunes_ = 0;
};

}  // namespace seve

#endif  // SEVE_PROTOCOL_SERVER_QUEUE_H_
