// seve-lint: allow-file(hot-vector-realloc): Section II baseline path,
// not on the SEVE fan-out hot path this rule protects.
#include "protocol/basic_server.h"

#include <memory>

namespace seve {

BasicServer::BasicServer(NodeId node, EventLoop* loop, Micros serialize_us)
    : Node(node, loop), serialize_us_(serialize_us) {}

void BasicServer::RegisterClient(ClientId client, NodeId node) {
  clients_[client] = ClientRec{node, 0};
}

void BasicServer::OnMessage(const Message& msg) {
  if (msg.body->kind() != kSubmitAction) return;
  const auto& submit = static_cast<const SubmitActionBody&>(*msg.body);
  ActionPtr action = submit.action;
  SubmitWork(serialize_us_, [this, action = std::move(action)]() {
    // (a) timestamp and enqueue.
    const SeqNum pos = static_cast<SeqNum>(queue_.size());
    queue_.push_back(OrderedAction{pos, action});
    ++stats_.actions_submitted;
    ++stats_.actions_committed;  // basic protocol: serialization = commit
    // (b) return to C all actions between posC and pos(a).
    ClientRec* rec = clients_.Find(action->origin());
    if (rec != nullptr) {
      SendRange(rec, pos + 1);
    }
  });
}

void BasicServer::SendRange(ClientRec* rec, SeqNum up_to_exclusive) {
  if (rec->pos >= up_to_exclusive) return;
  auto body = std::make_shared<DeliverActionsBody>();
  body->actions.assign(
      queue_.begin() + static_cast<ptrdiff_t>(rec->pos),
      queue_.begin() + static_cast<ptrdiff_t>(up_to_exclusive));
  rec->pos = up_to_exclusive;
  Send(rec->node, body->WireSize(), body);
}

void BasicServer::FlushAll() {
  const SeqNum end = static_cast<SeqNum>(queue_.size());
  clients_.ForEach([&](ClientId, ClientRec& rec) { SendRange(&rec, end); });
}

}  // namespace seve
