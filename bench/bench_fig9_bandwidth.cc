// Figure 9: Total data transfer vs. number of clients.
//
// Expected shape (paper): Broadcast traffic is quadratic in the client
// count (~800 KB per client at 64 clients); Central is optimal; SEVE does
// not differ significantly from Central.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"
#include "wire/audit.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 9 - Total data transfer vs number of clients",
      "Broadcast quadratic (~800 kb/client at 64); SEVE ~= Central");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<int> client_counts =
      quick ? std::vector<int>{8, 24} : std::vector<int>{8, 16, 24, 32, 40,
                                                         48, 56, 64};
  // Traffic is charged from real wire encodings, not the per-body declared
  // estimates; the audit below reports how far the two disagree.
  std::printf("wire mode: %s\n\n", WireModeName(WireMode::kEncoded));
  std::vector<SweepJob> jobs;
  for (const Architecture arch :
       {Architecture::kCentral, Architecture::kBroadcast,
        Architecture::kSeve}) {
    for (const int clients : client_counts) {
      Scenario s = Scenario::TableOne(clients);
      // Modest per-move cost so even 64-client Broadcast stays in the
      // stable regime: Figure 9 isolates traffic, not CPU collapse.
      s.fixed_move_cost_us = 1000;
      s.world.num_walls = 0;
      s.moves_per_client = quick ? 20 : 100;
      s.wire_mode = WireMode::kEncoded;
      jobs.push_back(SweepJob{ArchitectureName(arch),
                              static_cast<double>(clients), arch,
                              std::move(s)});
    }
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);
  std::printf("%-12s %-8s %-16s %-16s %-14s\n", "arch", "clients",
              "kb/client", "server total kb", "messages");
  wire::WireAudit audit;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && jobs[i].label != jobs[i - 1].label) std::printf("\n");
    const RunReport& r = results[i].report;
    audit.Merge(r.wire_audit);
    std::printf("%-12s %-8d %-16.1f %-16.1f %-14lld\n",
                jobs[i].label.c_str(), static_cast<int>(jobs[i].x),
                r.per_client_kb,
                static_cast<double>(r.server_traffic.total_bytes()) /
                    1024.0,
                static_cast<long long>(r.total_traffic.sent.messages));
  }
  std::printf("\nDeclared vs encoded sizes (all runs pooled):\n%s\n",
              audit.ToString().c_str());
  bench::WriteBenchJson("fig9_bandwidth", num_jobs, quick, jobs, results);
  return 0;
}
