// Section II-A quantified: geographic zoning vs SEVE when players crowd.
//
// Zoning scales beautifully while players stay spread across zones — and
// "zones collapse if too many users crowd into a zone all at once" (the
// in-game event / raid problem): the owning zone server saturates while
// the rest of the fleet idles. SEVE has no geographic partition to
// overload; a crowd instead raises client-side interest density (the
// Figure-8 regime, where the Information Bound Model's chain breaking is
// the relief valve).

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Section II-A - zoning vs SEVE as players crowd one zone",
      "spread load: both flat; crowd: the owning zone server saturates "
      "(fleet idles) while SEVE's cost shifts to client-side density");

  const bool quick = bench::QuickMode(argc, argv);
  struct Spawn {
    const char* label;
    SpawnConfig config;
  };
  SpawnConfig uniform;
  uniform.pattern = SpawnConfig::Pattern::kUniform;
  SpawnConfig crowd;
  crowd.pattern = SpawnConfig::Pattern::kClustered;
  crowd.clusters = 1;
  crowd.cluster_sigma = 12.0;
  const std::vector<Spawn> spawns = {{"spread", uniform},
                                     {"crowded", crowd}};

  const int num_jobs = bench::JobsArg(argc, argv);
  std::vector<SweepJob> jobs;
  std::vector<const char*> spawn_of_job;
  for (const Spawn& spawn : spawns) {
    for (const int clients : quick ? std::vector<int>{24}
                                   : std::vector<int>{16, 32, 48}) {
      for (const Architecture arch :
           {Architecture::kZoned, Architecture::kSeve}) {
        Scenario s = Scenario::TableOne(clients);
        s.world.spawn = spawn.config;
        s.zones_per_side = 3;
        s.moves_per_client = quick ? 15 : 50;
        jobs.push_back(SweepJob{std::string(spawn.label) + "/" +
                                    ArchitectureName(arch),
                                static_cast<double>(clients), arch,
                                std::move(s)});
        spawn_of_job.push_back(spawn.label);
      }
    }
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);

  std::printf("%-10s %-8s %-10s %14s %12s\n", "spawn", "arch", "clients",
              "mean resp ms", "p95 ms");
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && spawn_of_job[i] != spawn_of_job[i - 1]) {
      std::printf("\n");
    }
    const RunReport& r = results[i].report;
    std::printf("%-10s %-8s %-10d %14.1f %12.1f\n", spawn_of_job[i],
                ArchitectureName(jobs[i].arch),
                static_cast<int>(jobs[i].x), r.MeanResponseMs(),
                r.P95ResponseMs());
  }
  bench::WriteBenchJson("zoning_crowd", num_jobs, quick, jobs, results);
  return 0;
}
