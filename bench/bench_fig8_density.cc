// Figure 8: Effect of increasing avatar density (60 clients in a 250x250
// world, avatars initially 4 units apart; visibility swept upward).
//
// Expected shape (paper): SEVE without move dropping bogs down once the
// average number of visible avatars exceeds ~35 (clients run out of CPU);
// SEVE with dropping sheds 1.5-7.5% of moves and stays stable.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 8 - Response time vs avatar density (60 clients, 250x250)",
      "SEVE w/o dropping degrades past ~35 visible avatars; with dropping "
      "stays stable (1.5-7.5% moves dropped)");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<double> visibilities =
      quick ? std::vector<double>{20.0, 60.0}
            : std::vector<double>{10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0};

  std::vector<SweepJob> jobs;
  for (const Architecture arch :
       {Architecture::kSeveNoDropping, Architecture::kSeve}) {
    for (const double visibility : visibilities) {
      Scenario s = Scenario::TableOne(60);
      s.world.bounds = AABB{{0.0, 0.0}, {250.0, 250.0}};
      // One tight social cluster: locally dense (conflict chains form),
      // globally spread (chains exceed the Table-I threshold and can be
      // broken). Per-move cost is dominated by visible-avatar checks so
      // the paper's x-axis (avg visible avatars) drives the knee; see
      // EXPERIMENTS.md for the calibration.
      s.world.num_walls = 300;
      s.world.visibility = visibility;
      s.world.spawn.pattern = SpawnConfig::Pattern::kClustered;
      s.world.spawn.clusters = 1;
      s.world.spawn.cluster_sigma = 25.0;
      s.cost.per_avatar_us = 250.0;
      s.seve.threshold = 45.0;  // Table I: 1.5 x the Table-I visibility
      s.moves_per_client = quick ? 15 : 50;
      jobs.push_back(SweepJob{ArchitectureName(arch), visibility, arch,
                              std::move(s)});
    }
  }
  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);
  std::printf("(x column = avatar visibility in units; `vis` column = "
              "measured average visible avatars, the paper's x-axis)\n");
  bench::WriteBenchJson("fig8_density", num_jobs, quick, jobs, results);
  return 0;
}
