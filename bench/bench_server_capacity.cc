// Section V-B.1 capacity claim: "We performed experiments on a single
// server and determined the limit of our implementation to be about 3500
// clients."
//
// The SEVE server only timestamps, routes (Equation-1 tests over a
// spatial index) and computes transitive closures — here we stress it
// with lightweight clients (one private counter each, uniform spread) and
// report server CPU utilisation and response degradation as the client
// count grows. The knee marks the single-server capacity.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "tests/test_actions.h"

namespace seve {
namespace {

struct CapacityPoint {
  int clients;
  double server_busy_pct;
  double mean_response_ms;
  double p95_response_ms;
};

CapacityPoint RunCapacity(int num_clients, int moves_per_client) {
  constexpr Micros kLatency = 119000;
  constexpr Micros kRtt = 2 * kLatency;
  constexpr Micros kPeriod = 300000;

  EventLoop loop;
  Network net(&loop);
  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = true;
  opts.threshold = 45.0;
  InterestModel interest(10.0, kRtt, opts.omega);
  const AABB bounds{{0.0, 0.0}, {1000.0, 1000.0}};

  // Server starts with every client's counter object.
  WorldState server_state;
  for (int i = 0; i < num_clients; ++i) {
    server_state.SetAttr(ObjectId(static_cast<uint64_t>(i) + 1), 1,
                         Value(int64_t{0}));
  }
  SeveServer server(NodeId(0), &loop, std::move(server_state), CostModel{},
                    interest, opts, bounds);
  net.AddNode(&server);

  Rng rng(7);
  std::vector<std::unique_ptr<SeveClient>> clients;
  std::vector<InterestProfile> profiles;
  clients.reserve(static_cast<size_t>(num_clients));
  profiles.reserve(static_cast<size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    WorldState initial;
    initial.SetAttr(counter, 1, Value(int64_t{0}));
    auto client = std::make_unique<SeveClient>(
        NodeId(static_cast<uint64_t>(i) + 1), &loop,
        ClientId(static_cast<uint64_t>(i)), NodeId(0), std::move(initial),
        [](const Action&, const WorldState&) -> Micros { return 200; },
        /*install_us=*/10, opts);
    net.AddNode(client.get());
    net.ConnectBidirectional(NodeId(0), client->id(),
                             LinkParams::LatencyOnly(kLatency));
    InterestProfile profile = ProfileAt(
        {rng.NextDouble(0.0, 1000.0), rng.NextDouble(0.0, 1000.0)}, 10.0);
    server.RegisterClient(client->client_id(), client->id(), profile);
    profiles.push_back(profile);
    clients.push_back(std::move(client));
  }
  server.Start();

  Rng jitter(13);
  VirtualTime last = 0;
  for (int i = 0; i < num_clients; ++i) {
    const VirtualTime start = static_cast<VirtualTime>(
        jitter.NextBounded(static_cast<uint64_t>(kPeriod)));
    SeveClient* client = clients[static_cast<size_t>(i)].get();
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    for (int k = 0; k < moves_per_client; ++k) {
      const VirtualTime when = start + static_cast<VirtualTime>(k) * kPeriod;
      last = std::max(last, when);
      const InterestProfile profile = profiles[static_cast<size_t>(i)];
      loop.At(when, [client, counter, i, k, profile]() {
        client->SubmitLocalAction(std::make_shared<CounterAdd>(
            ActionId((static_cast<uint64_t>(i) << 32) |
                     static_cast<uint64_t>(k)),
            client->client_id(), counter, 1, profile));
      });
    }
  }
  // Every action carries its client's (fixed) interest profile, so the
  // spatial routing only tests genuinely nearby clients.
  loop.RunUntil(last + kRtt + 300000);
  server.Stop();
  loop.RunUntilIdle(100'000'000);
  server.FlushAll();
  loop.RunUntilIdle(100'000'000);

  Histogram responses;
  for (const auto& client : clients) {
    responses.Merge(client->stats().response_time_us);
  }
  const double wall = static_cast<double>(loop.now());
  CapacityPoint point;
  point.clients = num_clients;
  point.server_busy_pct =
      100.0 * static_cast<double>(server.cpu_busy_us()) / wall;
  point.mean_response_ms = responses.Mean() / 1000.0;
  point.p95_response_ms = static_cast<double>(responses.P95()) / 1000.0;
  return point;
}

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Section V-B capacity - SEVE single-server client limit",
      "Server saturates around ~3500 clients (it only serializes, routes "
      "and computes closures)");

  const bool quick = bench::QuickMode(argc, argv);
  const std::vector<int> counts = quick
                                      ? std::vector<int>{250, 1000}
                                      : std::vector<int>{250, 500, 1000,
                                                         2000, 3000, 3500,
                                                         4000};
  const int moves = quick ? 5 : 10;
  std::printf("%-8s %-18s %-18s %-14s\n", "clients", "server CPU busy %",
              "mean response ms", "p95 ms");
  for (const int n : counts) {
    const CapacityPoint p = RunCapacity(n, moves);
    std::printf("%-8d %-18.1f %-18.1f %-14.1f\n", p.clients,
                p.server_busy_pct, p.mean_response_ms, p.p95_response_ms);
    std::fflush(stdout);
  }
  return 0;
}
