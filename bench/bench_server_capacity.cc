// Section V-B.1 capacity claim: "We performed experiments on a single
// server and determined the limit of our implementation to be about 3500
// clients."
//
// The SEVE server only timestamps, routes (Equation-1 tests over a
// spatial index) and computes transitive closures — here we stress it
// with lightweight clients (one private counter each, uniform spread) and
// report server CPU utilisation and response degradation as the client
// count grows. The knee marks the single-server capacity.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "sim/sweep.h"
#include "tests/test_actions.h"

namespace seve {
namespace {

struct CapacityPoint {
  int clients;
  double server_busy_pct;
  double mean_response_ms;
  double p95_response_ms;
  double wall_seconds = 0.0;
  // Closure-engine kernel counters for the run (real work, not simulated
  // cost): conflict-walk visits, ObjectSet signature decisions, and
  // incremental-digest activity in the authoritative store.
  uint64_t walk_visits = 0;
  uint64_t intersect_calls = 0;
  uint64_t sig_rejects = 0;
  uint64_t digest_folds = 0;
  uint64_t digest_rescans = 0;
};

CapacityPoint RunCapacity(int num_clients, int moves_per_client) {
  // ObjectSet counters are thread_local and each capacity point runs
  // wholly inside one pool worker, so deltas here are this run's alone
  // (plus any earlier run on the same worker — hence before/after).
  const ObjectSetCounters set_before = GetObjectSetCounters();
  constexpr Micros kLatency = 119000;
  constexpr Micros kRtt = 2 * kLatency;
  constexpr Micros kPeriod = 300000;

  EventLoop loop;
  Network net(&loop);
  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = true;
  opts.threshold = 45.0;
  InterestModel interest(10.0, kRtt, opts.omega);
  const AABB bounds{{0.0, 0.0}, {1000.0, 1000.0}};

  // Server starts with every client's counter object.
  WorldState server_state;
  for (int i = 0; i < num_clients; ++i) {
    server_state.SetAttr(ObjectId(static_cast<uint64_t>(i) + 1), 1,
                         Value(int64_t{0}));
  }
  SeveServer server(NodeId(0), &loop, std::move(server_state), CostModel{},
                    interest, opts, bounds);
  net.AddNode(&server);

  Rng rng(7);
  std::vector<std::unique_ptr<SeveClient>> clients;
  std::vector<InterestProfile> profiles;
  clients.reserve(static_cast<size_t>(num_clients));
  profiles.reserve(static_cast<size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    WorldState initial;
    initial.SetAttr(counter, 1, Value(int64_t{0}));
    auto client = std::make_unique<SeveClient>(
        NodeId(static_cast<uint64_t>(i) + 1), &loop,
        ClientId(static_cast<uint64_t>(i)), NodeId(0), std::move(initial),
        [](const Action&, const WorldState&) -> Micros { return 200; },
        /*install_us=*/10, opts);
    net.AddNode(client.get());
    net.ConnectBidirectional(NodeId(0), client->id(),
                             LinkParams::LatencyOnly(kLatency));
    InterestProfile profile = ProfileAt(
        {rng.NextDouble(0.0, 1000.0), rng.NextDouble(0.0, 1000.0)}, 10.0);
    server.RegisterClient(client->client_id(), client->id(), profile);
    profiles.push_back(profile);
    clients.push_back(std::move(client));
  }
  server.Start();

  Rng jitter(13);
  VirtualTime last = 0;
  for (int i = 0; i < num_clients; ++i) {
    const VirtualTime start = static_cast<VirtualTime>(
        jitter.NextBounded(static_cast<uint64_t>(kPeriod)));
    SeveClient* client = clients[static_cast<size_t>(i)].get();
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    for (int k = 0; k < moves_per_client; ++k) {
      const VirtualTime when = start + static_cast<VirtualTime>(k) * kPeriod;
      last = std::max(last, when);
      const InterestProfile profile = profiles[static_cast<size_t>(i)];
      loop.At(when, [client, counter, i, k, profile]() {
        client->SubmitLocalAction(std::make_shared<CounterAdd>(
            ActionId((static_cast<uint64_t>(i) << 32) |
                     static_cast<uint64_t>(k)),
            client->client_id(), counter, 1, profile));
      });
    }
  }
  // Every action carries its client's (fixed) interest profile, so the
  // spatial routing only tests genuinely nearby clients.
  loop.RunUntil(last + kRtt + 300000);
  server.Stop();
  loop.RunUntilIdle(100'000'000);
  server.FlushAll();
  loop.RunUntilIdle(100'000'000);

  Histogram responses;
  for (const auto& client : clients) {
    responses.Merge(client->stats().response_time_us);
  }
  const double wall = static_cast<double>(loop.now());
  CapacityPoint point;
  point.clients = num_clients;
  point.server_busy_pct =
      100.0 * static_cast<double>(server.cpu_busy_us()) / wall;
  point.mean_response_ms = responses.Mean() / 1000.0;
  point.p95_response_ms = static_cast<double>(responses.P95()) / 1000.0;
  const ObjectSetCounters& set_after = GetObjectSetCounters();
  point.walk_visits = static_cast<uint64_t>(server.stats().closure_visits);
  point.intersect_calls = set_after.intersect_calls - set_before.intersect_calls;
  point.sig_rejects = set_after.sig_rejects - set_before.sig_rejects;
  point.digest_folds = server.authoritative().digest_folds();
  point.digest_rescans = server.authoritative().digest_rescans();
  return point;
}

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Section V-B capacity - SEVE single-server client limit",
      "Server saturates around ~3500 clients (it only serializes, routes "
      "and computes closures)");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<int> counts = quick
                                      ? std::vector<int>{250, 1000}
                                      : std::vector<int>{250, 500, 1000,
                                                         2000, 3000, 3500,
                                                         4000};
  const int moves = quick ? 5 : 10;

  // Not a RunScenario sweep (this binary drives its own client fleet),
  // but the points are still independent simulations: fan them out over
  // the same work-stealing pool.
  std::vector<CapacityPoint> points(counts.size());
  ParallelFor(counts.size(), num_jobs, [&](size_t i) {
    const auto start = std::chrono::steady_clock::now();
    points[i] = RunCapacity(counts[i], moves);
    points[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  });

  std::printf("%-8s %-18s %-18s %-14s\n", "clients", "server CPU busy %",
              "mean response ms", "p95 ms");
  for (const CapacityPoint& p : points) {
    std::printf("%-8d %-18.1f %-18.1f %-14.1f\n", p.clients,
                p.server_busy_pct, p.mean_response_ms, p.p95_response_ms);
  }

  // Bespoke JSON (no RunReport here): same top-level envelope as the
  // sweep benches, capacity-specific row fields.
  std::string j = "{\n  \"bench\": \"server_capacity\",\n";
  j += "  \"schema_version\": 1,\n";
  j += "  \"jobs\": " + std::to_string(num_jobs) + ",\n";
  j += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  j += "  \"rows\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const CapacityPoint& p = points[i];
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"clients\": %d, \"moves_per_client\": %d, "
                  "\"server_busy_pct\": %.6g, \"response_mean_ms\": %.6g, "
                  "\"response_p95_ms\": %.6g, \"wall_seconds\": %.6g, "
                  "\"walk_visits\": %llu, \"intersect_calls\": %llu, "
                  "\"sig_rejects\": %llu, \"digest_folds\": %llu, "
                  "\"digest_rescans\": %llu}%s\n",
                  p.clients, moves, p.server_busy_pct, p.mean_response_ms,
                  p.p95_response_ms, p.wall_seconds,
                  static_cast<unsigned long long>(p.walk_visits),
                  static_cast<unsigned long long>(p.intersect_calls),
                  static_cast<unsigned long long>(p.sig_rejects),
                  static_cast<unsigned long long>(p.digest_folds),
                  static_cast<unsigned long long>(p.digest_rescans),
                  i + 1 < points.size() ? "," : "");
    j += row;
  }
  j += "  ]\n}\n";
  if (std::FILE* f = std::fopen("BENCH_server_capacity.json", "w")) {
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_server_capacity.json (%zu rows, jobs=%d)\n",
                points.size(), num_jobs);
  } else {
    std::fprintf(stderr, "WARNING: cannot write BENCH_server_capacity.json\n");
  }
  return 0;
}
