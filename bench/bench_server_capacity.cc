// Section V-B.1 capacity claim: "We performed experiments on a single
// server and determined the limit of our implementation to be about 3500
// clients."
//
// The SEVE server only timestamps, routes (Equation-1 tests over a
// spatial index) and computes transitive closures — here we stress it
// with lightweight clients (one private counter each, uniform spread) and
// report server CPU utilisation and response degradation as the client
// count grows. The knee marks the single-server capacity.
//
// The XL regime extends the sweep to a 100,000-avatar single shard
// (DESIGN.md §13): a spectator-heavy population where only a small
// mover district is active at any instant, short links, and tight
// interest radii. Every XL point runs twice — dirty-list flush vs the
// legacy full-client scan (SeveOptions::legacy_flush_scan) — with the
// real wall-clock of the flush+route kernels recorded side by side.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "sim/sweep.h"
#include "tests/test_actions.h"

namespace seve {
namespace {

struct CapacityConfig {
  int clients = 0;
  int movers = 0;  // active submitters; == clients in the classic regime
  int moves = 0;
  bool xl = false;           // 100k single-shard regime
  bool legacy_flush = false; // run the pre-dirty-list full scan
};

struct CapacityPoint {
  CapacityConfig config;
  double server_busy_pct = 0.0;
  double mean_response_ms = 0.0;
  double p95_response_ms = 0.0;
  double wall_seconds = 0.0;
  // Closure-engine kernel counters for the run (real work, not simulated
  // cost): conflict-walk visits, ObjectSet signature decisions, and
  // incremental-digest activity in the authoritative store.
  uint64_t walk_visits = 0;
  uint64_t intersect_calls = 0;
  uint64_t sig_rejects = 0;
  uint64_t digest_folds = 0;
  uint64_t digest_rescans = 0;
  // Fan-out kernel counters + measured flush/route wall time.
  FanoutCounters fanout;
  double dirty_scan_ratio = 0.0;
  int64_t flush_route_ns = 0;
  // XL rejoin-under-pacing: catch-up chunks sent and the largest batch
  // any single tick carried (the pacer's enforced ceiling).
  int64_t snapshot_chunks = 0;
  int64_t max_chunks_per_tick = 0;
  bool rejoiner_caught_up = true;
};

CapacityPoint RunCapacity(const CapacityConfig& cfg) {
  // ObjectSet counters are thread_local and each capacity point runs
  // wholly inside one pool worker, so deltas here are this run's alone
  // (plus any earlier run on the same worker — hence before/after).
  const ObjectSetCounters set_before = GetObjectSetCounters();
  const Micros kLatency = cfg.xl ? 20000 : 119000;
  const Micros kRtt = 2 * kLatency;
  const Micros kPeriod = cfg.xl ? 500000 : 300000;
  const double kRadius = cfg.xl ? 1.0 : 10.0;

  EventLoop loop;
  Network net(&loop);
  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = true;
  opts.threshold = 45.0;
  opts.legacy_flush_scan = cfg.legacy_flush;
  if (cfg.xl) {
    // Measure the real flush+route kernels; silence the CommitNotice
    // broadcast so the (node-less) spectator population stays silent.
    opts.kernel_timing = true;
    opts.commit_notice_period_us = 0;
    // A mid-run rejoin must not burst the whole 100k-object snapshot
    // into one tick: pace it and let main() assert the bound held.
    opts.snapshot_chunks_per_tick = 64;
  }
  InterestModel interest(10.0, kRtt, opts.omega);
  const AABB bounds{{0.0, 0.0}, {1000.0, 1000.0}};

  // Server starts with every client's counter object.
  WorldState server_state;
  for (int i = 0; i < cfg.clients; ++i) {
    server_state.SetAttr(ObjectId(static_cast<uint64_t>(i) + 1), 1,
                         Value(int64_t{0}));
  }
  SeveServer server(NodeId(0), &loop, std::move(server_state), CostModel{},
                    interest, opts, bounds);
  net.AddNode(&server);

  Rng rng(7);
  std::vector<std::unique_ptr<SeveClient>> clients;
  std::vector<InterestProfile> profiles;
  clients.reserve(static_cast<size_t>(cfg.movers));
  profiles.reserve(static_cast<size_t>(cfg.movers));
  for (int i = 0; i < cfg.movers; ++i) {
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    WorldState initial;
    initial.SetAttr(counter, 1, Value(int64_t{0}));
    auto client = std::make_unique<SeveClient>(
        NodeId(static_cast<uint64_t>(i) + 1), &loop,
        ClientId(static_cast<uint64_t>(i)), NodeId(0), std::move(initial),
        [](const Action&, const WorldState&) -> Micros { return 200; },
        /*install_us=*/10, opts);
    net.AddNode(client.get());
    net.ConnectBidirectional(NodeId(0), client->id(),
                             LinkParams::LatencyOnly(kLatency));
    // XL: movers pack into a 200x200 district; classic: uniform world.
    InterestProfile profile =
        cfg.xl ? ProfileAt({rng.NextDouble(5.0, 195.0),
                            rng.NextDouble(5.0, 195.0)},
                           kRadius)
               : ProfileAt({rng.NextDouble(0.0, 1000.0),
                            rng.NextDouble(0.0, 1000.0)},
                           kRadius);
    server.RegisterClient(client->client_id(), client->id(), profile);
    profiles.push_back(profile);
    clients.push_back(std::move(client));
  }
  // XL spectators: registered (slot + spatial-index + flush bookkeeping
  // all carry them) but idle and far from the mover district, so no
  // message ever targets them — they need no simulated node. This is the
  // population the dirty list must NOT scan.
  for (int i = cfg.movers; i < cfg.clients; ++i) {
    server.RegisterClient(
        ClientId(static_cast<uint64_t>(i)),
        NodeId(static_cast<uint64_t>(i) + 1'000'000),
        ProfileAt({rng.NextDouble(305.0, 995.0), rng.NextDouble(5.0, 995.0)},
                  kRadius));
  }
  server.Start();

  Rng jitter(13);
  VirtualTime last = 0;
  for (int i = 0; i < cfg.movers; ++i) {
    const VirtualTime start = static_cast<VirtualTime>(
        jitter.NextBounded(static_cast<uint64_t>(kPeriod)));
    SeveClient* client = clients[static_cast<size_t>(i)].get();
    const ObjectId counter(static_cast<uint64_t>(i) + 1);
    for (int k = 0; k < cfg.moves; ++k) {
      const VirtualTime when = start + static_cast<VirtualTime>(k) * kPeriod;
      last = std::max(last, when);
      const InterestProfile profile = profiles[static_cast<size_t>(i)];
      loop.At(when, [client, counter, i, k, profile]() {
        client->SubmitLocalAction(std::make_shared<CounterAdd>(
            ActionId((static_cast<uint64_t>(i) << 32) |
                     static_cast<uint64_t>(k)),
            client->client_id(), counter, 1, profile));
      });
    }
  }
  // XL: crash one mover early and rejoin it mid-run, so the paced
  // catch-up (a 100k-object snapshot at snapshot_chunks_per_tick) pumps
  // while the shard is live — the regime the pacer exists for.
  if (cfg.xl && !clients.empty()) {
    SeveClient* rejoiner = clients.front().get();
    loop.At(300'000, [rejoiner]() { rejoiner->Fail(); });
    loop.At(1'000'000, [rejoiner]() { rejoiner->Rejoin(); });
  }
  // Every action carries its client's (fixed) interest profile, so the
  // spatial routing only tests genuinely nearby clients. XL keeps the
  // server running through an idle tail: a live shard push-cycles
  // whether or not anyone moved, which is exactly where the dirty list
  // beats the full scan.
  loop.RunUntil(last + kRtt + (cfg.xl ? 1'800'000 : 300'000));
  // Read the rejoiner before teardown: FlushAll drains any still-queued
  // catch-up in one burst (deliberately uncounted), so "caught up by end
  // of run" is only meaningful here.
  const bool rejoiner_caught_up =
      clients.empty() || !clients.front()->rejoining();
  server.Stop();
  loop.RunUntilIdle(100'000'000);
  server.FlushAll();
  loop.RunUntilIdle(100'000'000);

  Histogram responses;
  for (const auto& client : clients) {
    responses.Merge(client->stats().response_time_us);
  }
  const double wall = static_cast<double>(loop.now());
  CapacityPoint point;
  point.config = cfg;
  point.server_busy_pct =
      100.0 * static_cast<double>(server.cpu_busy_us()) / wall;
  point.mean_response_ms = responses.Mean() / 1000.0;
  point.p95_response_ms = static_cast<double>(responses.P95()) / 1000.0;
  const ObjectSetCounters& set_after = GetObjectSetCounters();
  point.walk_visits = static_cast<uint64_t>(server.stats().closure_visits);
  point.intersect_calls = set_after.intersect_calls - set_before.intersect_calls;
  point.sig_rejects = set_after.sig_rejects - set_before.sig_rejects;
  point.digest_folds = server.authoritative().digest_folds();
  point.digest_rescans = server.authoritative().digest_rescans();
  point.fanout = server.stats().fanout;
  point.dirty_scan_ratio = point.fanout.DirtyScanRatio(cfg.clients);
  point.flush_route_ns = server.flush_route_wall_ns();
  point.snapshot_chunks = server.stats().snapshot_chunks;
  point.max_chunks_per_tick = server.stats().sync.max_chunks_per_tick;
  point.rejoiner_caught_up = rejoiner_caught_up;
  return point;
}

int MoversFor(int clients) {
  // Spectator-heavy town square: ~2% of the shard population is active
  // at any moment, capped so the submission stream stays bounded.
  return std::max(64, std::min(1000, clients / 50));
}

int AvatarsArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--avatars") == 0 && i + 1 < argc) {
      return std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::strncmp(argv[i], "--avatars=", 10) == 0) {
      return std::max(1, std::atoi(argv[i] + 10));
    }
  }
  return 0;
}

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Section V-B capacity - SEVE single-server client limit",
      "Server saturates around ~3500 clients (it only serializes, routes "
      "and computes closures)");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const int avatars_only = AvatarsArg(argc, argv);

  std::vector<CapacityConfig> configs;
  if (avatars_only > 0) {
    // Perf-smoke mode: one XL population, both flush arms.
    const int movers = MoversFor(avatars_only);
    configs.push_back({avatars_only, movers, 5, true, false});
    configs.push_back({avatars_only, movers, 5, true, true});
  } else {
    const std::vector<int> counts =
        quick ? std::vector<int>{250, 1000}
              : std::vector<int>{250, 500, 1000, 2000, 3000, 3500, 4000};
    const int moves = quick ? 5 : 10;
    for (int c : counts) configs.push_back({c, c, moves, false, false});
    if (!quick) {
      // The 100k-avatar single-shard regime, each point twice: dirty-list
      // flush vs the legacy full scan, side by side.
      for (int c : {10000, 20000, 50000, 100000}) {
        const int movers = MoversFor(c);
        configs.push_back({c, movers, 5, true, false});
        configs.push_back({c, movers, 5, true, true});
      }
    }
  }

  // Not a RunScenario sweep (this binary drives its own client fleet),
  // but the points are still independent simulations: fan them out over
  // the same work-stealing pool.
  std::vector<CapacityPoint> points(configs.size());
  ParallelFor(configs.size(), num_jobs, [&](size_t i) {
    const auto start = std::chrono::steady_clock::now();
    points[i] = RunCapacity(configs[i]);
    points[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  });

  std::printf("%-8s %-8s %-8s %-18s %-16s %-10s %-14s\n", "clients",
              "movers", "flush", "server CPU busy %", "mean resp ms",
              "p95 ms", "flush+route ms");
  for (const CapacityPoint& p : points) {
    std::printf("%-8d %-8d %-8s %-18.1f %-16.1f %-10.1f %-14.2f\n",
                p.config.clients, p.config.movers,
                p.config.xl ? (p.config.legacy_flush ? "legacy" : "dirty")
                            : "-",
                p.server_busy_pct, p.mean_response_ms, p.p95_response_ms,
                static_cast<double>(p.flush_route_ns) / 1e6);
  }

  // XL pairs: kernel speedup of the dirty-list flush over the full scan.
  struct Speedup {
    int clients;
    double factor;
  };
  std::vector<Speedup> speedups;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    const CapacityPoint& dirty = points[i];
    const CapacityPoint& legacy = points[i + 1];
    if (dirty.config.xl && legacy.config.xl &&
        dirty.config.clients == legacy.config.clients &&
        !dirty.config.legacy_flush && legacy.config.legacy_flush &&
        dirty.flush_route_ns > 0) {
      const double factor = static_cast<double>(legacy.flush_route_ns) /
                            static_cast<double>(dirty.flush_route_ns);
      speedups.push_back({dirty.config.clients, factor});
      std::printf("xl %-7d flush+route kernel speedup: %.2fx "
                  "(legacy %.2f ms -> dirty %.2f ms, scan ratio %.4f)\n",
                  dirty.config.clients, factor,
                  static_cast<double>(legacy.flush_route_ns) / 1e6,
                  static_cast<double>(dirty.flush_route_ns) / 1e6,
                  dirty.dirty_scan_ratio);
    }
  }

  // XL pacing bound: every XL point ran a mid-run crash/rejoin against a
  // snapshot_chunks_per_tick = 64 pacer, so the largest per-tick batch
  // the server recorded must sit in (0, 64] — zero means the rejoin
  // never streamed, above 64 means the pacer leaked a burst.
  bool pacing_ok = true;
  for (const CapacityPoint& p : points) {
    if (!p.config.xl) continue;
    if (p.max_chunks_per_tick <= 0 || p.max_chunks_per_tick > 64 ||
        !p.rejoiner_caught_up) {
      std::fprintf(stderr,
                   "PACING FAIL: xl clients=%d flush=%s "
                   "max_chunks_per_tick=%lld (bound 64) caught_up=%d\n",
                   p.config.clients,
                   p.config.legacy_flush ? "legacy" : "dirty",
                   static_cast<long long>(p.max_chunks_per_tick),
                   p.rejoiner_caught_up ? 1 : 0);
      pacing_ok = false;
    } else {
      std::printf("xl %-7d %-7s rejoin paced OK: %lld chunks, max "
                  "%lld/tick (bound 64)\n",
                  p.config.clients,
                  p.config.legacy_flush ? "legacy" : "dirty",
                  static_cast<long long>(p.snapshot_chunks),
                  static_cast<long long>(p.max_chunks_per_tick));
    }
  }

  // Bespoke JSON (no RunReport here): same top-level envelope as the
  // sweep benches, capacity-specific row fields.
  std::string j = "{\n  \"bench\": \"server_capacity\",\n";
  j += "  \"schema_version\": 1,\n";
  j += "  \"jobs\": " + std::to_string(num_jobs) + ",\n";
  j += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  j += "  \"xl_speedups\": [";
  for (size_t i = 0; i < speedups.size(); ++i) {
    char s[96];
    std::snprintf(s, sizeof(s),
                  "%s{\"clients\": %d, \"flush_route_speedup\": %.6g}",
                  i > 0 ? ", " : "", speedups[i].clients,
                  speedups[i].factor);
    j += s;
  }
  j += "],\n";
  j += "  \"rows\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const CapacityPoint& p = points[i];
    char row[1024];
    std::snprintf(
        row, sizeof(row),
        "    {\"clients\": %d, \"movers\": %d, \"moves_per_client\": %d, "
        "\"regime\": \"%s\", \"flush_scan\": \"%s\", "
        "\"server_busy_pct\": %.6g, \"response_mean_ms\": %.6g, "
        "\"response_p95_ms\": %.6g, \"wall_seconds\": %.6g, "
        "\"walk_visits\": %llu, \"intersect_calls\": %llu, "
        "\"sig_rejects\": %llu, \"digest_folds\": %llu, "
        "\"digest_rescans\": %llu, \"push_batches\": %lld, "
        "\"coalesced_pushes\": %lld, \"dirty_slots_flushed\": %lld, "
        "\"flush_cycles\": %lld, \"dirty_scan_ratio\": %.6g, "
        "\"route_alloc\": %lld, \"flush_route_ns\": %lld, "
        "\"snapshot_chunks\": %lld, \"max_chunks_per_tick\": %lld, "
        "\"rejoiner_caught_up\": %s}%s\n",
        p.config.clients, p.config.movers, p.config.moves,
        p.config.xl ? "xl" : "classic",
        p.config.legacy_flush ? "legacy" : "dirty", p.server_busy_pct,
        p.mean_response_ms, p.p95_response_ms, p.wall_seconds,
        static_cast<unsigned long long>(p.walk_visits),
        static_cast<unsigned long long>(p.intersect_calls),
        static_cast<unsigned long long>(p.sig_rejects),
        static_cast<unsigned long long>(p.digest_folds),
        static_cast<unsigned long long>(p.digest_rescans),
        static_cast<long long>(p.fanout.push_batches),
        static_cast<long long>(p.fanout.coalesced_pushes),
        static_cast<long long>(p.fanout.dirty_slots_flushed),
        static_cast<long long>(p.fanout.flush_cycles), p.dirty_scan_ratio,
        static_cast<long long>(p.fanout.route_alloc),
        static_cast<long long>(p.flush_route_ns),
        static_cast<long long>(p.snapshot_chunks),
        static_cast<long long>(p.max_chunks_per_tick),
        p.rejoiner_caught_up ? "true" : "false",
        i + 1 < points.size() ? "," : "");
    j += row;
  }
  j += "  ]\n}\n";
  if (std::FILE* f = std::fopen("BENCH_server_capacity.json", "w")) {
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_server_capacity.json (%zu rows, jobs=%d)\n",
                points.size(), num_jobs);
  } else {
    std::fprintf(stderr, "WARNING: cannot write BENCH_server_capacity.json\n");
  }
  return pacing_ok ? 0 : 1;
}
