#ifndef SEVE_BENCH_GBENCH_MAIN_H_
#define SEVE_BENCH_GBENCH_MAIN_H_

#include <cstring>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

namespace seve::bench {

/// Shared main() body for the google-benchmark binaries: runs the
/// registered benchmarks with `--benchmark_out=BENCH_<name>.json
/// --benchmark_out_format=json` injected, so every bench run leaves a
/// machine-readable trajectory file. Passing an explicit
/// --benchmark_out on the command line overrides the injection.
inline int GBenchMain(const char* bench_name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    out_flag = std::string("--benchmark_out=BENCH_") + bench_name + ".json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace seve::bench

#endif  // SEVE_BENCH_GBENCH_MAIN_H_
