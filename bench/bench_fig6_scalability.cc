// Figure 6: Response time vs. number of clients (Table-I settings,
// 100,000 walls, ~7.44 ms per move).
//
// Expected shape (paper): Central and Broadcast break down at ~30-32
// clients and diverge into the tens of seconds; SEVE stays flat near
// (1+omega) RTT regardless of client count.

#include <vector>

#include "bench/bench_util.h"
#include "sim/runner.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 6 - Scalability of SEVE vs Central vs Broadcast",
      "Central & Broadcast collapse at ~30-32 clients; SEVE flat (~360ms)");

  const bool quick = bench::QuickMode(argc, argv);
  const std::vector<int> client_counts =
      quick ? std::vector<int>{8, 32} : std::vector<int>{8, 16, 24, 32, 40,
                                                         48, 64};
  for (const Architecture arch :
       {Architecture::kCentral, Architecture::kBroadcast,
        Architecture::kSeve}) {
    for (const int clients : client_counts) {
      Scenario s = Scenario::TableOne(clients);
      if (quick) {
        s.world.num_walls = 10000;
        s.moves_per_client = 20;
      }
      const RunReport r = RunScenario(arch, s);
      bench::PrintRunRow(ArchitectureName(arch), clients, r);
    }
    std::printf("\n");
  }
  return 0;
}
