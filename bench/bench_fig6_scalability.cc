// Figure 6: Response time vs. number of clients (Table-I settings,
// 100,000 walls, ~7.44 ms per move).
//
// Expected shape (paper): Central and Broadcast break down at ~30-32
// clients and diverge into the tens of seconds; SEVE stays flat near
// (1+omega) RTT regardless of client count.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 6 - Scalability of SEVE vs Central vs Broadcast",
      "Central & Broadcast collapse at ~30-32 clients; SEVE flat (~360ms)");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<int> client_counts =
      quick ? std::vector<int>{8, 32} : std::vector<int>{8, 16, 24, 32, 40,
                                                         48, 64};
  std::vector<SweepJob> jobs;
  for (const Architecture arch :
       {Architecture::kCentral, Architecture::kBroadcast,
        Architecture::kSeve}) {
    for (const int clients : client_counts) {
      Scenario s = Scenario::TableOne(clients);
      if (quick) {
        s.world.num_walls = 10000;
        s.moves_per_client = 20;
      }
      jobs.push_back(SweepJob{ArchitectureName(arch),
                              static_cast<double>(clients), arch,
                              std::move(s)});
    }
  }
  // "seve-xl": the SoA/dirty-list fan-out path at populations two
  // orders beyond the paper's 64-client testbed (the 100k single-shard
  // point lives in bench_server_capacity). Sparse read sets keep the
  // scripted move generator O(1) per move so the sweep exercises the
  // server hot path, not the O(N) read-set builder; the O(N^2)
  // visibility sampler is likewise disabled.
  const std::vector<int> xl_counts =
      quick ? std::vector<int>{1000} : std::vector<int>{1000, 2000, 5000};
  for (const int clients : xl_counts) {
    Scenario s = Scenario::TableOne(clients);
    s.world.num_walls = 1000;
    s.moves_per_client = 10;
    s.world.sparse_reads = true;
    s.workload.sample_visibility = false;
    jobs.push_back(SweepJob{"seve-xl", static_cast<double>(clients),
                            Architecture::kSeve, std::move(s)});
  }

  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);
  bench::WriteBenchJson("fig6_scalability", num_jobs, quick, jobs, results);
  return 0;
}
