// Ablation: the Information Bound Model's chain-breaking threshold
// (Section III-E, Equation 2).
//
// Smaller thresholds drop more moves but bound the closure tighter;
// infinite threshold reduces to the pure First Bound Model (no drops,
// unbounded chains). Run in the dense Figure-8 arena where chains form.

#include <limits>
#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Ablation - Information Bound threshold sweep (60 clients, dense)",
      "drop rate falls and closure size grows as threshold rises");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<double> thresholds =
      quick ? std::vector<double>{15.0, 60.0}
            : std::vector<double>{7.5, 15.0, 30.0, 45.0, 60.0, 120.0};

  auto make_job = [&](double threshold, bool dropping,
                      const char* label) {
    // The calibrated Figure-8 arena: one dense social cluster where
    // conflict chains actually form (see bench_fig8_density).
    Scenario s = Scenario::TableOne(60);
    s.world.bounds = AABB{{0.0, 0.0}, {250.0, 250.0}};
    s.world.num_walls = 300;
    s.world.visibility = 50.0;
    s.world.spawn.pattern = SpawnConfig::Pattern::kClustered;
    s.world.spawn.clusters = 1;
    s.world.spawn.cluster_sigma = 25.0;
    s.cost.per_avatar_us = 250.0;
    s.seve.threshold = threshold;
    s.moves_per_client = quick ? 10 : 40;
    return SweepJob{label, threshold,
                    dropping ? Architecture::kSeve
                             : Architecture::kSeveNoDropping,
                    std::move(s)};
  };

  std::vector<SweepJob> jobs;
  char label[32];
  for (const double threshold : thresholds) {
    std::snprintf(label, sizeof(label), "%.1f", threshold);
    jobs.push_back(make_job(threshold, true, label));
  }
  jobs.push_back(
      make_job(std::numeric_limits<double>::infinity(), false, "off"));
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);

  std::printf("%-12s %-12s %-16s %-18s\n", "threshold", "% dropped",
              "mean resp ms", "max closure batch");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const RunReport& r = results[i].report;
    std::printf("%-12s %-12.2f %-16.1f %-18lld\n", jobs[i].label.c_str(),
                r.drop_rate * 100.0, r.MeanResponseMs(),
                static_cast<long long>(r.server_stats.closure_size.max()));
  }
  bench::WriteBenchJson("ablation_threshold", num_jobs, quick, jobs,
                        results);
  return 0;
}
