// Figure 7: Response time vs. per-action complexity at 25 clients.
//
// Expected shape (paper): Central and Broadcast perform well below
// ~10 ms per move and then diverge drastically; SEVE is unaffected across
// the whole 0-25 ms range.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 7 - Response time vs action complexity (25 clients)",
      "Central/Broadcast unusable past ~10 ms/action; SEVE flat to 25 ms");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<int> costs_ms =
      quick ? std::vector<int>{5, 15}
            : std::vector<int>{1, 3, 5, 7, 9, 11, 13, 15, 20, 25};

  std::vector<SweepJob> jobs;
  for (const Architecture arch :
       {Architecture::kCentral, Architecture::kBroadcast,
        Architecture::kSeve}) {
    for (const int cost_ms : costs_ms) {
      Scenario s = Scenario::TableOne(25);
      s.world.num_walls = 0;  // complexity comes from the override
      s.fixed_move_cost_us = static_cast<Micros>(cost_ms) * 1000;
      if (quick) s.moves_per_client = 20;
      jobs.push_back(SweepJob{ArchitectureName(arch),
                              static_cast<double>(cost_ms), arch,
                              std::move(s)});
    }
  }
  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);
  bench::WriteBenchJson("fig7_complexity", num_jobs, quick, jobs, results);
  return 0;
}
