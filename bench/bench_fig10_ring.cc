// Figure 10: SEVE vs a RING-like (visibility-filtered) architecture with
// elevated avatar density (the paper raises average visible avatars to
// ~14 by increasing visibility).
//
// Expected shape (paper): both stay flat from 20 to 60 clients; SEVE's
// transitive-closure bookkeeping costs ~1% extra response time — the
// price of strong consistency is negligible.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 10 - SEVE vs RING-like architecture (dense visibility)",
      "Both flat over 20-60 clients; SEVE ~1% above RING (closure cost)");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<int> client_counts =
      quick ? std::vector<int>{20, 40}
            : std::vector<int>{20, 30, 40, 50, 60};

  std::vector<SweepJob> jobs;
  for (const int clients : client_counts) {
    Scenario s = Scenario::TableOne(clients);
    // Densify: wider visibility + moderate clusters raise the average
    // visible avatars toward the paper's 14.01. The wall-check radius is
    // held at the Table-I effective range (1.9 x 30 units) so per-move
    // cost stays at the calibrated ~7.4 ms instead of scaling with the
    // enlarged visibility.
    s.world.visibility = 45.0;
    s.cost.wall_check_radius_factor = 1.9 * 30.0 / 45.0;
    s.world.spawn.clusters = 4;
    s.world.spawn.cluster_sigma = 20.0;
    s.seve.threshold = 1.5 * s.world.visibility;
    s.moves_per_client = quick ? 15 : 50;

    // SEVE with proactive push and immediate submission replies: pushes
    // pre-deliver conflicting actions, so the reply is lean and the
    // measured difference against RING is the consistency machinery
    // (transitive-closure walks), the paper's "runtime overhead of our
    // strongly consistent approach". Chain breaking is off — this dense
    // but spread workload produces no long chains to cut.
    jobs.push_back(SweepJob{"SEVE", static_cast<double>(clients),
                            Architecture::kSeveNoDropping, s});
    jobs.push_back(SweepJob{"RING", static_cast<double>(clients),
                            Architecture::kRing, std::move(s)});
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const RunReport& seve_run = results[i].report;
    const RunReport& ring_run = results[i + 1].report;
    const int clients = static_cast<int>(jobs[i].x);
    bench::PrintRunRow("SEVE", clients, seve_run);
    bench::PrintRunRow("RING", clients, ring_run);
    std::printf("  -> closure overhead vs RING: %+.2f%%   (RING consistency:"
                " %lld mismatches)\n\n",
                (seve_run.MeanResponseMs() / ring_run.MeanResponseMs() -
                 1.0) * 100.0,
                static_cast<long long>(ring_run.consistency.mismatches));
  }
  bench::WriteBenchJson("fig10_ring", num_jobs, quick, jobs, results);
  return 0;
}
