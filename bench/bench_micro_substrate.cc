// Microbenchmarks for the substrates: world-state store, spatial index,
// move evaluation, and the discrete-event loop. These quantify the real
// CPU cost of the simulator itself (distinct from the calibrated virtual
// costs charged inside experiments).

#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.h"
#include "net/event_loop.h"
#include "spatial/grid_index.h"
#include "store/world_state.h"
#include "world/attrs.h"
#include "world/manhattan_world.h"

namespace seve {
namespace {

void BM_WorldStateSetAttr(benchmark::State& state) {
  WorldState ws;
  for (uint64_t i = 0; i < 1000; ++i) {
    ws.SetAttr(ObjectId(i), kAttrPosition, Value(Vec2{0.0, 0.0}));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    ws.SetAttr(ObjectId(i % 1000), kAttrPosition,
               Value(Vec2{static_cast<double>(i), 0.0}));
    ++i;
  }
}
BENCHMARK(BM_WorldStateSetAttr);

void BM_WorldStateDigest(benchmark::State& state) {
  WorldState ws;
  const auto n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    ws.SetAttr(ObjectId(i), kAttrPosition,
               Value(Vec2{static_cast<double>(i), 1.0}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.Digest());
  }
}
BENCHMARK(BM_WorldStateDigest)->Arg(64)->Arg(1024);

void BM_GridIndexQuery(benchmark::State& state) {
  Rng rng(1);
  GridIndex index(AABB{{0.0, 0.0}, {1000.0, 1000.0}}, 20.0);
  for (uint64_t key = 0; key < 100000; ++key) {
    const Vec2 center{rng.NextDouble(0.0, 1000.0),
                      rng.NextDouble(0.0, 1000.0)};
    (void)index.Insert(key, AABB::FromCircle(center, 5.0));
  }
  for (auto _ : state) {
    int count = 0;
    index.QueryCircle({500.0, 500.0}, 30.0,
                      [&count](uint64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GridIndexQuery);

void BM_MoveEvaluation(benchmark::State& state) {
  WorldConfig cfg;
  cfg.num_walls = static_cast<int>(state.range(0));
  cfg.num_avatars = 64;
  ManhattanWorld world(cfg, 5);
  WorldState ws = world.InitialState();
  uint64_t k = 0;
  for (auto _ : state) {
    const int avatar = static_cast<int>(k % 64);
    auto move = world.MakeMove(ActionId(k), ClientId(k % 64), avatar, 0, ws,
                               300000);
    benchmark::DoNotOptimize(move->Apply(&ws));
    ++k;
  }
}
BENCHMARK(BM_MoveEvaluation)->ArgName("walls")->Arg(1000)->Arg(100000);

void BM_EventLoopChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.At(i, [&fired]() { ++fired; });
    }
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopChurn);

void BM_ObjectSetIntersects(benchmark::State& state) {
  Rng rng(2);
  std::vector<ObjectId> a_ids, b_ids;
  for (int i = 0; i < 16; ++i) {
    a_ids.push_back(ObjectId(rng.NextBounded(1000)));
    b_ids.push_back(ObjectId(rng.NextBounded(1000)));
  }
  const ObjectSet a(a_ids), b(b_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_ObjectSetIntersects);

}  // namespace
}  // namespace seve

BENCHMARK_MAIN();
