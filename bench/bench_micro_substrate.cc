// Microbenchmarks for the substrates: world-state store, spatial index,
// move evaluation, and the discrete-event loop. These quantify the real
// CPU cost of the simulator itself (distinct from the calibrated virtual
// costs charged inside experiments).

#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/event_loop.h"
#include "shard/shard_map.h"
#include "spatial/grid_index.h"
#include "store/world_state.h"
#include "world/attrs.h"
#include "world/manhattan_world.h"

namespace seve {
namespace {

void BM_WorldStateSetAttr(benchmark::State& state) {
  WorldState ws;
  for (uint64_t i = 0; i < 1000; ++i) {
    ws.SetAttr(ObjectId(i), kAttrPosition, Value(Vec2{0.0, 0.0}));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    ws.SetAttr(ObjectId(i % 1000), kAttrPosition,
               Value(Vec2{static_cast<double>(i), 0.0}));
    ++i;
  }
}
BENCHMARK(BM_WorldStateSetAttr);

void BM_WorldStateDigest(benchmark::State& state) {
  WorldState ws;
  const auto n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    ws.SetAttr(ObjectId(i), kAttrPosition,
               Value(Vec2{static_cast<double>(i), 1.0}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ws.Digest());
  }
  state.counters["digest_folds"] = static_cast<double>(ws.digest_folds());
  state.counters["digest_rescans"] = static_cast<double>(ws.digest_rescans());
}
// The incremental digest makes this flat in the object count (it used to
// rescan all n objects per call); 16384 is the tell.
BENCHMARK(BM_WorldStateDigest)->Arg(64)->Arg(1024)->Arg(16384);

// The realistic digest workload: mutate one object, then read the digest
// (what the sweep determinism checks and consistency audits do per
// frame). Cost must be one hash fold, independent of store size.
void BM_WorldStateMutateDigest(benchmark::State& state) {
  WorldState ws;
  const auto n = static_cast<uint64_t>(state.range(0));
  for (uint64_t i = 0; i < n; ++i) {
    ws.SetAttr(ObjectId(i), kAttrPosition,
               Value(Vec2{static_cast<double>(i), 1.0}));
  }
  uint64_t k = 0;
  for (auto _ : state) {
    ws.SetAttr(ObjectId(k % n), kAttrPosition,
               Value(Vec2{static_cast<double>(k), 2.0}));
    benchmark::DoNotOptimize(ws.Digest());
    ++k;
  }
  state.counters["digest_folds"] = static_cast<double>(ws.digest_folds());
  state.counters["digest_rescans"] = static_cast<double>(ws.digest_rescans());
}
BENCHMARK(BM_WorldStateMutateDigest)->Arg(64)->Arg(1024)->Arg(16384);

void BM_GridIndexQuery(benchmark::State& state) {
  Rng rng(1);
  GridIndex index(AABB{{0.0, 0.0}, {1000.0, 1000.0}}, 20.0);
  for (uint64_t key = 0; key < 100000; ++key) {
    const Vec2 center{rng.NextDouble(0.0, 1000.0),
                      rng.NextDouble(0.0, 1000.0)};
    (void)index.Insert(key, AABB::FromCircle(center, 5.0));
  }
  for (auto _ : state) {
    int count = 0;
    index.QueryCircle({500.0, 500.0}, 30.0,
                      [&count](uint64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_GridIndexQuery);

// The avatar-tick workload: items jitter by small steps, so most Move
// calls keep the covered cell range unchanged (the fast path).
void BM_GridIndexAvatarMove(benchmark::State& state) {
  Rng rng(3);
  GridIndex index(AABB{{0.0, 0.0}, {1000.0, 1000.0}}, 20.0);
  std::vector<Vec2> pos(64);
  for (uint64_t key = 0; key < 64; ++key) {
    pos[key] = {rng.NextDouble(100.0, 900.0), rng.NextDouble(100.0, 900.0)};
    (void)index.Insert(key, AABB::FromCircle(pos[key], 0.5));
  }
  uint64_t k = 0;
  for (auto _ : state) {
    const uint64_t key = k % 64;
    Vec2& p = pos[key];
    p.x += rng.NextDouble(-3.0, 3.0);
    p.y += rng.NextDouble(-3.0, 3.0);
    p.x = std::min(std::max(p.x, 50.0), 950.0);
    p.y = std::min(std::max(p.y, 50.0), 950.0);
    benchmark::DoNotOptimize(index.Move(key, AABB::FromCircle(p, 0.5)));
    ++k;
  }
}
BENCHMARK(BM_GridIndexAvatarMove);

// Collection variant used by code that needs the result list (sorted API).
void BM_GridIndexCollectCircle(benchmark::State& state) {
  Rng rng(4);
  GridIndex index(AABB{{0.0, 0.0}, {1000.0, 1000.0}}, 20.0);
  for (uint64_t key = 0; key < 100000; ++key) {
    const Vec2 center{rng.NextDouble(0.0, 1000.0),
                      rng.NextDouble(0.0, 1000.0)};
    (void)index.Insert(key, AABB::FromCircle(center, 5.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CollectCircle({500.0, 500.0}, 30.0));
  }
}
BENCHMARK(BM_GridIndexCollectCircle);

void BM_MoveEvaluation(benchmark::State& state) {
  WorldConfig cfg;
  cfg.num_walls = static_cast<int>(state.range(0));
  cfg.num_avatars = 64;
  ManhattanWorld world(cfg, 5);
  WorldState ws = world.InitialState();
  uint64_t k = 0;
  for (auto _ : state) {
    const int avatar = static_cast<int>(k % 64);
    auto move = world.MakeMove(ActionId(k), ClientId(k % 64), avatar, 0, ws,
                               300000);
    benchmark::DoNotOptimize(move->Apply(&ws));
    ++k;
  }
}
BENCHMARK(BM_MoveEvaluation)->ArgName("walls")->Arg(1000)->Arg(100000);

void BM_EventLoopChurn(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.At(i, [&fired]() { ++fired; });
    }
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopChurn);

// The schedule/run kernel with realistic captures: protocol callbacks
// carry shared_ptr bodies plus ids, which overflow std::function's
// small-buffer optimization and used to heap-allocate per event.
void BM_EventLoopScheduleRun(benchmark::State& state) {
  auto payload = std::make_shared<int>(7);
  for (auto _ : state) {
    EventLoop loop;
    int64_t sum = 0;
    for (int i = 0; i < 1000; ++i) {
      uint64_t a = static_cast<uint64_t>(i);
      uint64_t b = a ^ 0x9e3779b97f4a7c15ULL;
      uint64_t c = a + b;
      loop.At(i, [&sum, payload, a, b, c]() {
        sum += static_cast<int64_t>(a + b + c) + *payload;
      });
    }
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_EventLoopScheduleRun);

// Interleaved schedule/run (timer-wheel style): every fired event
// schedules a successor, so the heap stays warm and small.
void BM_EventLoopPingPong(benchmark::State& state) {
  for (auto _ : state) {
    EventLoop loop;
    int64_t fired = 0;
    std::function<void()> tick = [&]() {
      if (++fired < 1000) loop.After(10, tick);
    };
    loop.After(10, tick);
    loop.RunUntilIdle();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventLoopPingPong);

void BM_ObjectSetIntersects(benchmark::State& state) {
  Rng rng(2);
  std::vector<ObjectId> a_ids, b_ids;
  for (int i = 0; i < 16; ++i) {
    a_ids.push_back(ObjectId(rng.NextBounded(1000)));
    b_ids.push_back(ObjectId(rng.NextBounded(1000)));
  }
  const ObjectSet a(a_ids), b(b_ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersects(b));
  }
}
BENCHMARK(BM_ObjectSetIntersects);

// The sharded tier's routing predicate (DESIGN.md §12): one Bloom AND
// rejects most cross-shard read sets before any per-id owner lookup.
// range(0) = 1 benches the hit path (set fully inside shard 0), 0 the
// reject path (set straddles shards, usually killed by the signature).
void BM_IsSubsetOfShard(benchmark::State& state) {
  WorldState initial;
  for (uint64_t i = 0; i < 4096; ++i) {
    const double x = static_cast<double>(i % 64) * 15.0;
    const double y = static_cast<double>(i / 64) * 15.0;
    initial.SetAttr(ObjectId(i), kAttrPosition, Value(Vec2{x, y}));
  }
  const ShardMap map(AABB{{0.0, 0.0}, {1000.0, 1000.0}}, 4, initial);
  const bool local = state.range(0) == 1;
  std::vector<ObjectId> ids;
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    const uint64_t id = rng.NextBounded(4096);
    ids.push_back(local ? ObjectId(map.objects_of(0)[id % map.objects_of(0)
                                                             .size()]
                                       .value())
                        : ObjectId(id));
  }
  const ObjectSet set(ids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.IsSubsetOfShard(map, 0));
  }
}
BENCHMARK(BM_IsSubsetOfShard)->ArgName("local")->Arg(1)->Arg(0);

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  return seve::bench::GBenchMain("micro_substrate", argc, argv);
}
