// Table II: Percentage of moves dropped as a function of the move effect
// range (avatar visibility fixed at 20 units, dense 250x250 world).
//
// Paper's numbers:  range 1 -> 0%,  3 -> 0%,  5 -> 0.01%,  7 -> 1.53%,
//                   9 -> 4.03%,  11 -> 8.87%.
// The shape to reproduce: no drops while the effect range is below the
// avatar spacing; once moves start chaining across neighbours the drop
// rate climbs steeply with the range.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Table II - % moves dropped vs move effect range (visibility 20)",
      "0 / 0 / 0.01 / 1.53 / 4.03 / 8.87 percent for ranges 1..11");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<double> ranges =
      quick ? std::vector<double>{3.0, 9.0}
            : std::vector<double>{1.0, 3.0, 5.0, 7.0, 9.0, 11.0};

  std::vector<SweepJob> jobs;
  for (const double range : ranges) {
    Scenario s = Scenario::TableOne(60);
    s.world.bounds = AABB{{0.0, 0.0}, {250.0, 250.0}};
    // Thin the obstacle layer so per-move cost stays small: Table II
    // isolates chain-breaking geometry, not CPU collapse.
    s.world.num_walls = 1500;
    s.world.visibility = 20.0;
    s.world.move_effect_range = range;
    // Dense spawn calibrated so the percolation threshold of the conflict
    // graph falls where the paper's drop rates take off (between effect
    // range 5 and 7). See EXPERIMENTS.md for the calibration discussion.
    s.world.spawn.pattern = SpawnConfig::Pattern::kGrid;
    s.world.spawn.grid_spacing = 7.0;
    s.seve.threshold = 1.5 * s.world.visibility;  // Table I rule
    s.moves_per_client = quick ? 15 : 100;
    jobs.push_back(
        SweepJob{"seve", range, Architecture::kSeve, std::move(s)});
  }
  const size_t num_range_jobs = jobs.size();

  // Chaos leg: frame loss on every link with the reliable channel
  // enabled. The interesting outputs here are the transport counters
  // (retransmits / duplicates / acks), which land in the JSON rows.
  const std::vector<double> drops =
      quick ? std::vector<double>{0.01} : std::vector<double>{0.01, 0.05};
  for (const double drop : drops) {
    Scenario s = Scenario::TableOne(quick ? 8 : 20);
    s.world.num_walls = 200;
    s.moves_per_client = quick ? 10 : 40;
    s.drop_probability = drop;
    s.reliable_transport = true;
    jobs.push_back(SweepJob{"lossy", drop, Architecture::kIncompleteWorld,
                            std::move(s)});
  }

  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);
  std::printf("%-18s %-12s %-12s\n", "move effect range", "% dropped",
              "mean resp ms");
  for (size_t i = 0; i < num_range_jobs; ++i) {
    const RunReport& r = results[i].report;
    std::printf("%-18.0f %-12.2f %-12.1f\n", jobs[i].x,
                r.drop_rate * 100.0, r.MeanResponseMs());
  }
  std::printf("\n%-12s %-12s %-12s %-12s\n", "link loss", "retransmits",
              "dup drops", "acks");
  for (size_t i = num_range_jobs; i < jobs.size(); ++i) {
    const RunReport& r = results[i].report;
    const ChannelStats& c = r.client_stats.channel;
    const ChannelStats& sv = r.server_stats.channel;
    std::printf("%-12.2f %-12llu %-12llu %-12llu\n", jobs[i].x,
                static_cast<unsigned long long>(c.retransmits + sv.retransmits),
                static_cast<unsigned long long>(c.dup_drops + sv.dup_drops),
                static_cast<unsigned long long>(c.acks_sent + sv.acks_sent));
  }
  bench::WriteBenchJson("table2_drops", num_jobs, quick, jobs, results);
  return 0;
}
