// The workload zoo (DESIGN.md §13): three declarative crowd stagings —
// flash crowd, two-army battle, caravan — layered over the Manhattan
// People world, each run with move-supersession off (seed digests) and
// on (newer queued moves replace never-sent predecessors).
//
// Every row reports the fan-out kernel counters (push batches, coalesced
// pushes, superseded moves, dirty-scan ratio) next to the paper's
// response/drop metrics, so the stagings double as regression anchors
// for the SoA/dirty-list hot path.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Workload zoo - crowd stagings on the SEVE hot path",
      "Flash crowd / two-army battle / caravan; supersession on vs off");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  // 512 is near the knee for a 50ms move period (the server is already
  // heavily oversubscribed); far past it runs end before the backlog
  // drains and the terminal-state audit reports divergence.
  const std::vector<int> counts =
      quick ? std::vector<int>{128} : std::vector<int>{256, 512};
  std::vector<SweepJob> jobs;
  for (const WorkloadKind kind :
       {WorkloadKind::kFlashCrowd, WorkloadKind::kBattle,
        WorkloadKind::kCaravan}) {
    for (const bool supersession : {false, true}) {
      for (const int clients : counts) {
        Scenario s = Scenario::TableOne(clients);
        s.world.num_walls = 1000;
        s.moves_per_client = quick ? 10 : 30;
        // Faster than the server tick so successive moves from one
        // avatar overlap in the pending queue — the supersession case.
        s.move_period_us = 50 * kMicrosPerMilli;
        s.workload.kind = kind;
        s.seve.move_supersession = supersession;
        std::string label = WorkloadKindName(kind);
        if (supersession) label += "+ss";
        jobs.push_back(SweepJob{std::move(label),
                                static_cast<double>(clients),
                                Architecture::kSeve, std::move(s)});
      }
    }
  }

  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);
  bench::WriteBenchJson("workload_zoo", num_jobs, quick, jobs, results);
  return 0;
}
