// Microbenchmark for the wire codec plus a declared-vs-encoded size
// audit: for a representative instance of every message kind, prints the
// hand-maintained WireSize() estimate next to the real encoded frame
// size. Encode/decode throughput is measured with google-benchmark.
//
// Usage: bench_wire_codec [google-benchmark flags]

#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include <cstdio>
#include <memory>
#include <utility>
#include <vector>

#include "action/blind_write.h"
#include "baseline/central.h"
#include "common/rng.h"
#include "protocol/lock_protocol.h"
#include "protocol/msg.h"
#include "protocol/occ_protocol.h"
#include "wire/audit.h"
#include "wire/codec.h"
#include "wire/frame.h"
#include "wire/serializers.h"
#include "world/move_action.h"

namespace seve {
namespace {

using wire::Bytes;

Object SampleObject(Rng* rng) {
  Object obj(ObjectId(rng->NextBounded(10'000)));
  obj.Set(1, Value(Vec2{rng->NextDouble(0, 1000), rng->NextDouble(0, 1000)}));
  obj.Set(2, Value(rng->NextDouble(0, 100)));
  obj.Set(3, Value(rng->NextInt(0, 1000)));
  return obj;
}

std::vector<Object> SampleObjects(Rng* rng, size_t count) {
  std::vector<Object> objects;
  for (size_t i = 0; i < count; ++i) objects.push_back(SampleObject(rng));
  return objects;
}

ObjectSet SampleSet(Rng* rng, size_t count) {
  ObjectSet set;
  for (size_t i = 0; i < count; ++i) {
    set.Insert(ObjectId(rng->NextBounded(10'000)));
  }
  return set;
}

InterestProfile SampleInterest(Rng* rng) {
  InterestProfile profile;
  profile.position = {rng->NextDouble(0, 1000), rng->NextDouble(0, 1000)};
  profile.radius = 10.0;
  profile.velocity = {1.0, -1.0};
  profile.interest_class = 1;
  return profile;
}

/// A typical in-game move: the workhorse of every SEVE scenario.
ActionPtr SampleMove(Rng* rng) {
  return std::make_shared<MoveAction>(
      ActionId(rng->NextBounded(1'000'000)), ClientId(rng->NextBounded(64)),
      /*tick=*/rng->NextInt(0, 10'000), ObjectId(rng->NextBounded(10'000)),
      /*step=*/1.5, /*avatar_radius=*/0.5, /*walls=*/nullptr,
      SampleSet(rng, 6), SampleInterest(rng));
}

std::vector<std::pair<ObjectId, SeqNum>> SampleVersions(Rng* rng,
                                                        size_t count) {
  std::vector<std::pair<ObjectId, SeqNum>> versions;
  for (size_t i = 0; i < count; ++i) {
    versions.emplace_back(ObjectId(rng->NextBounded(10'000)),
                          rng->NextInt(0, 1'000'000));
  }
  return versions;
}

/// One representative body per registered kind, sized like mid-run
/// traffic in the Table-1 scenario.
std::vector<std::shared_ptr<MessageBody>> RepresentativeBodies(Rng* rng) {
  std::vector<std::shared_ptr<MessageBody>> bodies;

  bodies.push_back(
      std::make_shared<SubmitActionBody>(SampleMove(rng), SampleSet(rng, 2)));

  auto deliver = std::make_shared<DeliverActionsBody>();
  for (int i = 0; i < 4; ++i) {
    deliver->actions.push_back(
        OrderedAction{rng->NextInt(0, 1'000'000), SampleMove(rng)});
  }
  bodies.push_back(deliver);

  auto completion = std::make_shared<CompletionBody>();
  completion->pos = 100;
  completion->action_id = ActionId(7);
  completion->from = ClientId(3);
  completion->digest = 0xdeadbeef;
  completion->written = SampleObjects(rng, 2);
  bodies.push_back(completion);

  auto drop = std::make_shared<DropNoticeBody>();
  drop->action_id = ActionId(8);
  drop->pos = 55;
  drop->refresh = SampleObjects(rng, 3);
  drop->refresh_pos = 54;
  bodies.push_back(drop);

  auto commit = std::make_shared<CommitNoticeBody>();
  commit->pos = 1234;
  bodies.push_back(commit);

  auto update = std::make_shared<ObjectUpdateBody>();
  update->pos = 42;
  update->action_id = ActionId(9);
  update->objects = SampleObjects(rng, 2);
  bodies.push_back(update);

  bodies.push_back(std::make_shared<LockRequestBody>(SampleMove(rng)));

  auto grant = std::make_shared<LockGrantBody>();
  grant->action_id = ActionId(10);
  grant->pos = 77;
  bodies.push_back(grant);

  auto lock_effect = std::make_shared<LockEffectBody>();
  lock_effect->action_id = ActionId(11);
  lock_effect->origin = ClientId(4);
  lock_effect->pos = 78;
  lock_effect->digest = 0xfeed;
  lock_effect->written = SampleObjects(rng, 2);
  bodies.push_back(lock_effect);

  auto occ_submit = std::make_shared<OccSubmitBody>();
  occ_submit->action = SampleMove(rng);
  occ_submit->read_versions = SampleVersions(rng, 4);
  occ_submit->digest = 0xabcd;
  occ_submit->written = SampleObjects(rng, 1);
  occ_submit->attempt = 2;
  bodies.push_back(occ_submit);

  auto verdict = std::make_shared<OccVerdictBody>();
  verdict->action_id = ActionId(12);
  verdict->committed = false;
  verdict->pos = 90;
  verdict->refresh = SampleObjects(rng, 2);
  verdict->refresh_versions = SampleVersions(rng, 2);
  bodies.push_back(verdict);

  auto occ_effect = std::make_shared<OccEffectBody>();
  occ_effect->pos = 91;
  occ_effect->digest = 0x1234;
  occ_effect->written = SampleObjects(rng, 2);
  occ_effect->versions = SampleVersions(rng, 2);
  bodies.push_back(occ_effect);

  return bodies;
}

int64_t DeclaredSize(const MessageBody& body) {
  // MessageBody has no virtual WireSize(); each concrete body declares
  // its own. Mirror what the protocols pass to Node::Send.
  if (auto* b = dynamic_cast<const SubmitActionBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const DeliverActionsBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const CompletionBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const DropNoticeBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const CommitNoticeBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const ObjectUpdateBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const LockRequestBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const LockGrantBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const LockEffectBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const OccSubmitBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const OccVerdictBody*>(&body))
    return b->WireSize();
  if (auto* b = dynamic_cast<const OccEffectBody*>(&body))
    return b->WireSize();
  return 0;
}

void PrintSizeAudit() {
  Rng rng(42);
  wire::WireAudit audit;
  for (const auto& body : RepresentativeBodies(&rng)) {
    const Result<Bytes> encoded = wire::EncodeMessage(*body);
    if (!encoded.ok()) {
      std::printf("UNENCODABLE kind=%d: %s\n", body->kind(),
                  encoded.status().ToString().c_str());
      continue;
    }
    audit.RecordEncoded(body->kind(), DeclaredSize(*body),
                        static_cast<int64_t>(encoded->size()));
  }
  std::printf(
      "Declared (WireSize estimate) vs encoded (real frame bytes), one\n"
      "representative instance per message kind:\n%s\n",
      audit.ToString().c_str());
}

// --- Throughput benchmarks -------------------------------------------------

void BM_EncodeSubmitAction(benchmark::State& state) {
  Rng rng(1);
  const SubmitActionBody body(SampleMove(&rng), SampleSet(&rng, 2));
  for (auto _ : state) {
    Result<Bytes> encoded = wire::EncodeMessage(body);
    benchmark::DoNotOptimize(encoded);
  }
}
BENCHMARK(BM_EncodeSubmitAction);

void BM_EncodeDeliverActions(benchmark::State& state) {
  Rng rng(2);
  DeliverActionsBody body;
  for (int64_t i = 0; i < state.range(0); ++i) {
    body.actions.push_back(OrderedAction{i, SampleMove(&rng)});
  }
  int64_t bytes = 0;
  for (auto _ : state) {
    Result<Bytes> encoded = wire::EncodeMessage(body);
    benchmark::DoNotOptimize(encoded);
    bytes = static_cast<int64_t>(encoded->size());
  }
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_EncodeDeliverActions)->Arg(1)->Arg(8)->Arg(64);

void BM_DecodeDeliverActions(benchmark::State& state) {
  Rng rng(3);
  DeliverActionsBody body;
  for (int64_t i = 0; i < state.range(0); ++i) {
    body.actions.push_back(OrderedAction{i, SampleMove(&rng)});
  }
  const Result<Bytes> frame = wire::EncodeMessage(body);
  for (auto _ : state) {
    Bytes reencoded;
    const Status st =
        wire::DecodeMessage(frame->data(), frame->size(), nullptr, &reencoded);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(reencoded);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(frame->size()));
}
BENCHMARK(BM_DecodeDeliverActions)->Arg(1)->Arg(8)->Arg(64);

void BM_VerifyRoundTrip(benchmark::State& state) {
  // The full kVerify path: encode + decode + canonical re-encode.
  Rng rng(4);
  const SubmitActionBody body(SampleMove(&rng), SampleSet(&rng, 2));
  for (auto _ : state) {
    const Result<Bytes> frame = wire::EncodeMessage(body);
    Bytes reencoded;
    const Status st =
        wire::DecodeMessage(frame->data(), frame->size(), nullptr, &reencoded);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(reencoded);
  }
}
BENCHMARK(BM_VerifyRoundTrip);

void BM_Checksum(benchmark::State& state) {
  Rng rng(5);
  Bytes data(static_cast<size_t>(state.range(0)));
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.NextBounded(256));
  for (auto _ : state) {
    const uint32_t sum = wire::Checksum(data.data(), data.size());
    benchmark::DoNotOptimize(sum);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Checksum)->Arg(64)->Arg(1024);

void BM_VarintEncode(benchmark::State& state) {
  Rng rng(6);
  std::vector<uint64_t> values(256);
  for (uint64_t& v : values) v = rng.Next() >> rng.NextBounded(64);
  for (auto _ : state) {
    wire::Writer w;
    for (const uint64_t v : values) w.PutVarint(v);
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_VarintEncode);

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  seve::wire::EnsureDefaultCodecs();
  seve::PrintSizeAudit();
  return seve::bench::GBenchMain("wire_codec", argc, argv);
}
