#ifndef SEVE_BENCH_BENCH_UTIL_H_
#define SEVE_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/sweep.h"

namespace seve::bench {

/// Prints the standard experiment header used by every reproduction
/// binary: what the paper's figure shows and what we regenerate.
inline void Banner(const char* title, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// Returns true if the binary was invoked with --quick (CI-friendly
/// scaled-down sweep).
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

/// Parses `--jobs N` / `--jobs=N`. Defaults to hardware concurrency.
/// Determinism guarantee: the sweep results are identical for any value.
inline int JobsArg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      return std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      return std::max(1, std::atoi(argv[i] + 7));
    }
  }
  return DefaultJobs();
}

inline void PrintRunRow(const char* label, int x, const RunReport& r) {
  std::printf(
      "%-12s x=%5d  resp_mean=%9.1f ms  p95=%9.1f ms  drops=%5.2f%%  "
      "vis=%5.2f  kb/client=%8.1f  consistent=%s\n",
      label, x, r.MeanResponseMs(), r.P95ResponseMs(), r.drop_rate * 100.0,
      r.avg_visible_avatars, r.per_client_kb,
      r.consistency.consistent() ? "yes" : "NO");
  std::fflush(stdout);
}

/// Runs the sweep across `num_jobs` workers and prints one row per job
/// in job order (a blank line between label groups), exactly as the
/// serial benches always printed. Returns the ordered results.
inline std::vector<SweepResult> RunSweepAndPrint(
    const std::vector<SweepJob>& jobs, int num_jobs) {
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && jobs[i].label != jobs[i - 1].label) std::printf("\n");
    PrintRunRow(jobs[i].label.c_str(), static_cast<int>(jobs[i].x),
                results[i].report);
  }
  return results;
}

namespace detail {

inline void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

inline void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan literal
    out->append("null");
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace detail

/// Writes `BENCH_<bench_name>.json` in the working directory: one row
/// per sweep point with the scenario knobs that vary, wall-clock cost,
/// determinism digest, and the virtual-time metrics every figure is
/// drawn from. The schema is documented in DESIGN.md §8.
inline bool WriteBenchJson(const std::string& bench_name, int num_jobs,
                           bool quick, const std::vector<SweepJob>& jobs,
                           const std::vector<SweepResult>& results) {
  std::string j;
  j.reserve(4096 + 1024 * jobs.size());
  double total_wall = 0.0;
  for (const SweepResult& r : results) total_wall += r.wall_seconds;

  j += "{\n";
  j += "  \"bench\": \"";
  detail::AppendEscaped(&j, bench_name);
  j += "\",\n";
  j += "  \"schema_version\": 1,\n";
  j += "  \"jobs\": " + std::to_string(num_jobs) + ",\n";
  j += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  j += "  \"total_sim_wall_seconds\": ";
  detail::AppendDouble(&j, total_wall);
  j += ",\n  \"rows\": [\n";
  for (size_t i = 0; i < jobs.size() && i < results.size(); ++i) {
    const SweepJob& job = jobs[i];
    const RunReport& r = results[i].report;
    j += "    {\"label\": \"";
    detail::AppendEscaped(&j, job.label);
    j += "\", \"x\": ";
    detail::AppendDouble(&j, job.x);
    j += ",\n     \"scenario\": {\"arch\": \"";
    detail::AppendEscaped(&j, ArchitectureName(job.arch));
    j += "\", \"clients\": " + std::to_string(job.scenario.num_clients);
    j += ", \"moves_per_client\": " +
         std::to_string(job.scenario.moves_per_client);
    j += ", \"walls\": " + std::to_string(job.scenario.world.num_walls);
    j += ", \"seed\": " + std::to_string(job.scenario.seed);
    j += ", \"link_kbps\": ";
    detail::AppendDouble(&j, job.scenario.link_kbps);
    j += ", \"wire_mode\": \"";
    detail::AppendEscaped(&j, WireModeName(job.scenario.wire_mode));
    j += "\", \"drop_probability\": ";
    detail::AppendDouble(&j, job.scenario.drop_probability);
    j += std::string(", \"reliable_transport\": ") +
         (job.scenario.reliable_transport ? "true" : "false");
    j += "},\n     \"wall_seconds\": ";
    detail::AppendDouble(&j, results[i].wall_seconds);
    {
      char digest[32];
      std::snprintf(digest, sizeof(digest), "0x%016llx",
                    static_cast<unsigned long long>(results[i].digest));
      j += ", \"digest\": \"";
      j += digest;
      j += "\",\n";
    }
    j += "     \"report\": {";
    j += "\"response_count\": " + std::to_string(r.response_us.count());
    j += ", \"response_mean_ms\": ";
    detail::AppendDouble(&j, r.MeanResponseMs());
    j += ", \"response_p50_ms\": ";
    detail::AppendDouble(
        &j, static_cast<double>(r.response_us.Median()) / 1000.0);
    j += ", \"response_p95_ms\": ";
    detail::AppendDouble(&j, r.P95ResponseMs());
    j += ", \"response_p99_ms\": ";
    detail::AppendDouble(
        &j, static_cast<double>(r.response_us.P99()) / 1000.0);
    j += ", \"response_max_ms\": ";
    detail::AppendDouble(
        &j, static_cast<double>(r.response_us.max()) / 1000.0);
    j += ", \"drop_rate\": ";
    detail::AppendDouble(&j, r.drop_rate);
    j += ", \"avg_visible_avatars\": ";
    detail::AppendDouble(&j, r.avg_visible_avatars);
    j += ", \"per_client_kb\": ";
    detail::AppendDouble(&j, r.per_client_kb);
    j += ", \"server_sent_bytes\": " +
         std::to_string(r.server_traffic.sent.bytes);
    j += ", \"total_sent_bytes\": " +
         std::to_string(r.total_traffic.sent.bytes);
    j += ", \"total_messages\": " +
         std::to_string(r.total_traffic.sent.messages);
    j += std::string(", \"consistent\": ") +
         (r.consistency.consistent() ? "true" : "false");
    j += ", \"wire_verify_failures\": " +
         std::to_string(r.wire_verify_failures);
    j += ", \"end_time_us\": " + std::to_string(r.end_time);
    j += ", \"events_run\": " + std::to_string(r.events_run);
    {
      // Reliable-channel and recovery counters (all zero on the plain
      // transport — emitted unconditionally so the schema is stable).
      const ChannelStats& cch = r.client_stats.channel;
      const ChannelStats& sch = r.server_stats.channel;
      j += ", \"channel_retransmits\": " +
           std::to_string(cch.retransmits + sch.retransmits);
      j += ", \"channel_dup_drops\": " +
           std::to_string(cch.dup_drops + sch.dup_drops);
      j += ", \"channel_rtx_timeouts\": " +
           std::to_string(cch.rtx_timeouts + sch.rtx_timeouts);
      j += ", \"channel_acks_sent\": " +
           std::to_string(cch.acks_sent + sch.acks_sent);
      j += ", \"channel_ack_bytes\": " +
           std::to_string(cch.ack_bytes + sch.ack_bytes);
      j += ", \"rejoins\": " +
           std::to_string(r.client_stats.rejoins + r.server_stats.rejoins);
      j += ", \"snapshot_chunks\": " +
           std::to_string(r.server_stats.snapshot_chunks);
    }
    {
      // Fan-out kernel counters (DESIGN.md §13): zero outside the SEVE
      // push path — emitted unconditionally so the schema is stable.
      const FanoutCounters& fan = r.server_stats.fanout;
      j += ", \"push_batches\": " + std::to_string(fan.push_batches);
      j += ", \"coalesced_pushes\": " +
           std::to_string(fan.coalesced_pushes);
      j += ", \"superseded_moves\": " +
           std::to_string(fan.superseded_moves);
      j += ", \"dirty_slots_flushed\": " +
           std::to_string(fan.dirty_slots_flushed);
      j += ", \"flush_cycles\": " + std::to_string(fan.flush_cycles);
      j += ", \"dirty_scan_ratio\": ";
      detail::AppendDouble(&j, fan.DirtyScanRatio(r.num_clients));
      j += ", \"route_alloc\": " + std::to_string(fan.route_alloc);
    }
    {
      // Delta-sync counters (DESIGN.md §15): zero unless delta_sync /
      // anti-entropy ran — emitted unconditionally so the schema is
      // stable. Server + client sides merged (retries and AE repairs
      // are counted at clients).
      SyncCounters sync = r.server_stats.sync;
      sync.Merge(r.client_stats.sync);
      j += ", \"sync_rounds\": " + std::to_string(sync.sync_rounds);
      j += ", \"sync_strata_bytes\": " + std::to_string(sync.strata_bytes);
      j += ", \"sync_ibf_cells\": " + std::to_string(sync.ibf_cells);
      j += ", \"sync_decode_failures\": " +
           std::to_string(sync.decode_failures);
      j += ", \"sync_fallbacks\": " + std::to_string(sync.fallbacks);
      j += ", \"delta_rejoins\": " + std::to_string(sync.delta_rejoins);
      j += ", \"sync_objects_shipped\": " +
           std::to_string(sync.objects_shipped);
      j += ", \"sync_objects_removed\": " +
           std::to_string(sync.objects_removed);
      j += ", \"sync_delta_bytes\": " + std::to_string(sync.delta_bytes);
      j += ", \"sync_full_bytes_estimate\": " +
           std::to_string(sync.full_bytes_estimate);
      j += ", \"ae_rounds\": " + std::to_string(sync.ae_rounds);
      j += ", \"ae_objects_repaired\": " +
           std::to_string(sync.ae_objects_repaired);
      j += ", \"owner_repairs\": " + std::to_string(sync.owner_repairs);
      j += ", \"sync_nacks\": " + std::to_string(sync.nacks);
      j += ", \"snapshot_retries\": " +
           std::to_string(sync.snapshot_retries);
      j += ", \"max_chunks_per_tick\": " +
           std::to_string(sync.max_chunks_per_tick);
    }
    if (!r.shard_counters.empty()) {
      // Sharded-tier commit counters (DESIGN.md §12): totals plus one
      // entry per shard, in shard order.
      ShardCounters total;
      for (const ShardCounters& sc : r.shard_counters) total.Merge(sc);
      j += ", \"shard_count\": " + std::to_string(r.shard_counters.size());
      j += ", \"fast_path_total\": " + std::to_string(total.fast_path);
      j += ", \"escalated_total\": " + std::to_string(total.escalated);
      j += ", \"fast_path_fraction\": ";
      detail::AppendDouble(&j, total.FastPathFraction());
      // Load + migration totals (DESIGN.md §14).
      j += ", \"submits_total\": " + std::to_string(total.submits);
      j += ", \"queue_depth_peak\": " +
           std::to_string(total.queue_depth_peak);
      j += ", \"migrations_out_total\": " +
           std::to_string(total.migrations_out);
      j += ", \"migrations_in_total\": " +
           std::to_string(total.migrations_in);
      j += ", \"migration_aborts_total\": " +
           std::to_string(total.migration_aborts);
      j += ", \"migrations_pending_total\": " +
           std::to_string(total.migrations_pending);
      j += ", \"rehomed_clients_total\": " +
           std::to_string(total.rehomed_clients);
      j += ", \"escalated_pushes_total\": " +
           std::to_string(total.escalated_pushes);
      j += ", \"migration_moves_planned\": " +
           std::to_string(r.migration_moves_planned);
      j += ", \"load_imbalance_first\": ";
      detail::AppendDouble(&j, r.load_imbalance_first);
      j += ", \"load_imbalance_last\": ";
      detail::AppendDouble(&j, r.load_imbalance_last);
      j += ", \"imbalance_windows\": [";
      for (size_t w = 0; w < r.shard_imbalance_windows.size(); ++w) {
        if (w > 0) j += ", ";
        detail::AppendDouble(&j, r.shard_imbalance_windows[w]);
      }
      j += "]";
      j += ", \"shards\": [";
      for (size_t sh = 0; sh < r.shard_counters.size(); ++sh) {
        const ShardCounters& sc = r.shard_counters[sh];
        if (sh > 0) j += ", ";
        j += "{\"fast_path\": " + std::to_string(sc.fast_path);
        j += ", \"escalated\": " + std::to_string(sc.escalated);
        j += ", \"tokens_served\": " + std::to_string(sc.tokens_served);
        j += ", \"commits\": " + std::to_string(sc.commits);
        j += ", \"aborts\": " + std::to_string(sc.aborts);
        j += ", \"stale_tokens\": " + std::to_string(sc.stale_tokens);
        j += ", \"submits\": " + std::to_string(sc.submits);
        j += ", \"queue_depth_peak\": " +
             std::to_string(sc.queue_depth_peak);
        j += ", \"migrations_out\": " + std::to_string(sc.migrations_out);
        j += ", \"migrations_in\": " + std::to_string(sc.migrations_in);
        j += ", \"migration_aborts\": " +
             std::to_string(sc.migration_aborts);
        j += ", \"migrations_pending\": " +
             std::to_string(sc.migrations_pending);
        j += ", \"rehomed_clients\": " +
             std::to_string(sc.rehomed_clients);
        j += ", \"escalated_pushes\": " +
             std::to_string(sc.escalated_pushes);
        j += "}";
      }
      j += "]";
    }
    j += "}}";
    j += (i + 1 < jobs.size()) ? ",\n" : "\n";
  }
  j += "  ]\n}\n";

  const std::string path = "BENCH_" + bench_name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "WARNING: cannot write %s\n", path.c_str());
    return false;
  }
  std::fwrite(j.data(), 1, j.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu rows, %.2fs simulated wall time, jobs=%d)\n",
              path.c_str(), jobs.size(), total_wall, num_jobs);
  return true;
}

}  // namespace seve::bench

#endif  // SEVE_BENCH_BENCH_UTIL_H_
