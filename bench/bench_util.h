#ifndef SEVE_BENCH_BENCH_UTIL_H_
#define SEVE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstring>
#include <string>

#include "sim/report.h"

namespace seve::bench {

/// Prints the standard experiment header used by every reproduction
/// binary: what the paper's figure shows and what we regenerate.
inline void Banner(const char* title, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// Returns true if the binary was invoked with --quick (CI-friendly
/// scaled-down sweep).
inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline void PrintRunRow(const char* label, int x, const RunReport& r) {
  std::printf(
      "%-12s x=%5d  resp_mean=%9.1f ms  p95=%9.1f ms  drops=%5.2f%%  "
      "vis=%5.2f  kb/client=%8.1f  consistent=%s\n",
      label, x, r.MeanResponseMs(), r.P95ResponseMs(), r.drop_rate * 100.0,
      r.avg_visible_avatars, r.per_client_kb,
      r.consistency.consistent() ? "yes" : "NO");
  std::fflush(stdout);
}

}  // namespace seve::bench

#endif  // SEVE_BENCH_BENCH_UTIL_H_
