// Ablation: the First Bound Model's omega parameter (Section III-D).
//
// The server pushes every omega*RTT; the model guarantees a response
// within (1+omega)*RTT. Small omega means tighter latency but more
// frequent (smaller) pushes; large omega batches better at the cost of
// response time. This sweep verifies the (1+omega)RTT envelope and shows
// the latency/traffic trade-off, plus the reply-on-submission mode
// (Incomplete World, no push) as the omega->"on demand" extreme.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Ablation - First Bound omega sweep (32 clients, Table I)",
      "response <= (1+omega) RTT; pushes batch better as omega grows");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const std::vector<double> omegas =
      quick ? std::vector<double>{0.5}
            : std::vector<double>{0.1, 0.25, 0.5, 0.75, 0.9};

  std::vector<SweepJob> jobs;
  for (const double omega : omegas) {
    Scenario s = Scenario::TableOne(32);
    s.world.num_walls = quick ? 2000 : 20000;
    s.moves_per_client = quick ? 15 : 50;
    s.seve.omega = omega;
    jobs.push_back(
        SweepJob{"omega", omega, Architecture::kSeve, std::move(s)});
  }
  {
    // Reply-on-submission extreme (pure Incomplete World Model).
    Scenario s = Scenario::TableOne(32);
    s.world.num_walls = quick ? 2000 : 20000;
    s.moves_per_client = quick ? 15 : 50;
    jobs.push_back(SweepJob{"reply", 0.0, Architecture::kIncompleteWorld,
                            std::move(s)});
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);

  std::printf("%-10s %-16s %-14s %-14s %-12s\n", "omega",
              "mean resp ms", "(1+w)RTT ms", "kb/client", "msgs/client");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const RunReport& r = results[i].report;
    const bool is_reply = jobs[i].label == "reply";
    const double bound_ms =
        (1.0 + (is_reply ? 0.0 : jobs[i].x)) * 2.0 * 119.0;
    if (is_reply) {
      std::printf("%-10s ", "reply");
    } else {
      std::printf("%-10.2f ", jobs[i].x);
    }
    std::printf("%-16.1f %-14.1f %-14.1f %-12.1f\n", r.MeanResponseMs(),
                bound_ms, r.per_client_kb,
                static_cast<double>(r.total_traffic.sent.messages) / 32.0);
  }
  bench::WriteBenchJson("ablation_omega", num_jobs, quick, jobs, results);
  return 0;
}
