// Ablation: the Section-IV optimizations.
//
//  * IV-A inconsequential action elimination (interest-class masks),
//  * IV-B area culling (velocity-projected conflict equation).
//
// Both prune the set of actions routed per client without touching the
// consistency machinery; the metric is actions evaluated per client and
// traffic, at equal workload.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Ablation - Section IV optimizations (velocity culling)",
      "culling prunes routed actions; consistency is preserved");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);

  struct Config {
    const char* label;
    bool velocity_culling;
  };
  const std::vector<Config> configs = {
      {"baseline", false},
      {"culling", true},
  };

  std::vector<SweepJob> jobs;
  for (const Config& config : configs) {
    Scenario s = Scenario::TableOne(quick ? 16 : 48);
    s.world.num_walls = quick ? 2000 : 20000;
    s.moves_per_client = quick ? 15 : 50;
    s.seve.velocity_culling = config.velocity_culling;
    jobs.push_back(SweepJob{config.label,
                            config.velocity_culling ? 1.0 : 0.0,
                            Architecture::kSeve, std::move(s)});
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);

  std::printf("%-10s %-18s %-14s %-14s %-12s\n", "config",
              "evals/client", "mean resp ms", "kb/client", "consistent");
  for (size_t i = 0; i < jobs.size(); ++i) {
    const RunReport& r = results[i].report;
    std::printf("%-10s %-18.1f %-14.1f %-14.1f %-12s\n",
                jobs[i].label.c_str(),
                static_cast<double>(r.client_stats.actions_evaluated) /
                    r.num_clients,
                r.MeanResponseMs(), r.per_client_kb,
                r.consistency.consistent() ? "yes" : "NO");
  }
  bench::WriteBenchJson("ablation_culling", num_jobs, quick, jobs,
                        results);
  return 0;
}
