// Section V-B.1 microbenchmark: "We empirically determined the time for
// calculating the transitive closure of conflicts over a single move to
// be about 0.04ms on average."
//
// Measures the REAL wall-clock cost of ServerQueue::WalkConflicts over a
// realistic uncommitted queue (Manhattan People moves), for several queue
// depths and conflict densities — this is genuine CPU work, not simulated
// cost.

#include <benchmark/benchmark.h>

#include "bench/gbench_main.h"

#include <memory>
#include <vector>

#include "common/rng.h"
#include "protocol/server_queue.h"
#include "world/attrs.h"
#include "world/manhattan_world.h"

namespace seve {
namespace {

/// Fills a server queue with `depth` uncommitted moves drawn from a
/// Manhattan People world of the given density.
struct QueueFixture {
  std::unique_ptr<ManhattanWorld> world;
  WorldState state;
  ServerQueue queue;
  std::vector<ActionPtr> actions;

  QueueFixture(int avatars, double world_side, int depth) {
    WorldConfig cfg;
    cfg.bounds = AABB{{0.0, 0.0}, {world_side, world_side}};
    cfg.num_walls = 1000;
    cfg.num_avatars = avatars;
    cfg.spawn.pattern = SpawnConfig::Pattern::kClustered;
    world = std::make_unique<ManhattanWorld>(cfg, 99);
    state = world->InitialState();
    Rng rng(4);
    for (int k = 0; k < depth; ++k) {
      const int avatar = static_cast<int>(
          rng.NextBounded(static_cast<uint64_t>(avatars)));
      auto move = world->MakeMove(ActionId(static_cast<uint64_t>(k)),
                                  ClientId(static_cast<uint64_t>(avatar)),
                                  avatar, 0, state, 300000);
      queue.Append(move, 0);
      actions.push_back(move);
      // Advance the reference state so consecutive moves chain.
      (void)move->Apply(&state);
    }
  }
};

void BM_TransitiveClosure(benchmark::State& bench_state) {
  const int avatars = static_cast<int>(bench_state.range(0));
  const int depth = static_cast<int>(bench_state.range(1));
  QueueFixture fx(avatars, /*world_side=*/1000.0, depth);

  // Walk the closure of the newest action, as Algorithm 6 does per reply.
  const ActionPtr& target = fx.actions.back();
  const ObjectSetCounters set_counters_before = GetObjectSetCounters();
  const uint64_t walk_visits_before = fx.queue.walk_visits_total();
  int64_t iters = 0;
  int64_t visits_total = 0;
  int64_t included_total = 0;
  for (auto _ : bench_state) {
    ObjectSet read_set = target->ReadSet();
    int included = 0;
    const int visits = fx.queue.WalkConflicts(
        fx.queue.end_pos() - 1, &read_set,
        [&included](const ServerQueue::Entry&) {
          ++included;
          return ServerQueue::WalkVerdict::kInclude;
        });
    benchmark::DoNotOptimize(visits);
    benchmark::DoNotOptimize(included);
    ++iters;
    visits_total += visits;
    included_total += included;
  }
  // Kernel counters, per closure walk: how much work the walk did and how
  // often the signature prefilter decided an intersection test by itself.
  // These land in BENCH_closure_cost.json alongside the timings.
  const ObjectSetCounters& sc = GetObjectSetCounters();
  const double denom = iters > 0 ? static_cast<double>(iters) : 1.0;
  bench_state.counters["walk_visits"] =
      static_cast<double>(visits_total) / denom;
  bench_state.counters["walk_included"] =
      static_cast<double>(included_total) / denom;
  bench_state.counters["queue_visits_total"] = static_cast<double>(
      fx.queue.walk_visits_total() - walk_visits_before);
  bench_state.counters["intersect_calls"] =
      static_cast<double>(sc.intersect_calls - set_counters_before.intersect_calls) /
      denom;
  bench_state.counters["sig_rejects"] =
      static_cast<double>(sc.sig_rejects - set_counters_before.sig_rejects) /
      denom;
  bench_state.counters["gallop_probes"] =
      static_cast<double>(sc.gallop_probes - set_counters_before.gallop_probes) /
      denom;
  bench_state.counters["merge_scans"] =
      static_cast<double>(sc.merge_scans - set_counters_before.merge_scans) /
      denom;
}
BENCHMARK(BM_TransitiveClosure)
    ->ArgNames({"avatars", "queue"})
    ->Args({64, 64})
    ->Args({64, 256})
    ->Args({256, 256})
    ->Args({1024, 1024})
    ->Args({3500, 3500});

void BM_QueueAppend(benchmark::State& bench_state) {
  QueueFixture fx(64, 1000.0, 1);
  const ActionPtr action = fx.actions.front();
  for (auto _ : bench_state) {
    ServerQueue queue;
    for (int i = 0; i < 100; ++i) queue.Append(action, 0);
    benchmark::DoNotOptimize(queue.end_pos());
  }
}
BENCHMARK(BM_QueueAppend);

void BM_InterestTestBatch(benchmark::State& bench_state) {
  // Equation-1 evaluation cost per candidate (the routing hot path).
  const int n = 1000;
  Rng rng(3);
  std::vector<InterestProfile> clients(n);
  for (auto& p : clients) {
    p.position = {rng.NextDouble(0.0, 1000.0), rng.NextDouble(0.0, 1000.0)};
    p.radius = 10.0;
  }
  InterestProfile action;
  action.position = {500.0, 500.0};
  action.radius = 10.0;
  const double bound = 2.0 * 10.0 * 1.5 * 0.238 + 20.0;
  for (auto _ : bench_state) {
    int hits = 0;
    for (const auto& client : clients) {
      if (DistanceSq(action.position, client.position) <= bound * bound) {
        ++hits;
      }
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_InterestTestBatch);

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  return seve::bench::GBenchMain("closure_cost", argc, argv);
}
