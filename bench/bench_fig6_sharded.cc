// Figure 6 companion, XL edition: the zone-sharded serialization tier
// driven to six-figure populations (DESIGN.md §12/§14). Sweeps
// 10k/25k/50k/100k flash-crowd clients across 1/4/8/16 shards, each
// multi-shard point in two arms:
//   static      — the seed partition, no ownership movement;
//   rebalanced  — the load-aware rebalancer migrates crowd members off
//                 the hottest shards every 500 ms (shard/rebalancer.h).
//
// The flash crowd spawns in tight shells around the world centre, so the
// static partition leaves the outer shards idle: max/mean queue-depth
// imbalance sits near  #shards / #occupied-cells  (~4 at 16 shards).
// The rebalanced arm must pull the last-window imbalance toward 1 while
// the merged committed state stays bit-identical to the 1-shard arm —
// handoffs change which shard serializes, never what commits. The binary
// exits non-zero if any arm of a population diverges from its 1-shard
// digest, so CI can gate on it directly.
//
// Scale knobs (all digest-neutral across the compared arms):
// sparse_reads (singleton closures), sparse_replicas (own-avatar client
// state), sample_visibility off, fixed per-move evaluation cost.
//
// Flags: --quick (CI smoke), --jobs N, --clients N / --shards M (focused
// run: population N at 1 + M shards, both arms — the perf-smoke leg uses
// --quick --clients 20000 --shards 8).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

namespace {

int IntFlag(int argc, char** argv, const char* name, int fallback) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
      return std::atoi(argv[i + 1]);
    }
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::atoi(argv[i] + len + 1);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 6 (sharded XL) - 100k-avatar flash crowd across shards",
      "per-shard load drops with the shard count; rebalancing handoffs "
      "flatten the crowd's hot spot without perturbing the committed "
      "state");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const int clients_override = IntFlag(argc, argv, "--clients", 0);
  const int shards_override = IntFlag(argc, argv, "--shards", 0);

  std::vector<int> populations;
  std::vector<int> shard_counts;
  if (clients_override > 0) {
    populations = {clients_override};
  } else if (quick) {
    populations = {2000};
  } else {
    populations = {10'000, 25'000, 50'000, 100'000};
  }
  if (shards_override > 0) {
    shard_counts = {shards_override};
  } else if (quick) {
    shard_counts = {4, 8};
  } else {
    shard_counts = {4, 8, 16};
  }

  auto base_scenario = [&](int clients) {
    Scenario s = Scenario::TableOne(clients);
    s.moves_per_client = quick ? 6 : 12;
    // 1 s between moves keeps the hot shards below saturation (the
    // static imbalance is geometry — 4 crowded cells — not overload).
    // At the Table-One 300 ms cadence a 100k hot spot queues seconds of
    // backlog, and the handoff message chain itself waits behind it, so
    // no migration lands inside the measured run.
    s.move_period_us = 1000 * kMicrosPerMilli;
    s.world.num_walls = 1000;
    s.link_kbps = 0.0;
    s.fixed_move_cost_us = 50;
    s.workload.kind = WorkloadKind::kFlashCrowd;
    s.workload.crowd_radius = 120.0;
    s.workload.spacing = 0.5;
    s.workload.sparse_reads = true;
    s.workload.sparse_replicas = true;
    s.workload.sample_visibility = false;
    // Load sampling runs in every arm; only `rebalance.enabled` arms act
    // on it. One epoch must be able to drain a 100k-avatar hot spot in a
    // single plan (at 16 shards that is ~75k handoffs): the windows that
    // overlap the handoff burst are poisoned and skipped, so a capped
    // first epoch would leave residual hot shards with no re-plan until
    // the burst settles.
    // The epoch matches the move period, so every window sees each
    // client exactly once and the arrival delta is an exact ownership
    // count. A shorter window samples only the clients whose submission
    // phase lands inside it — structural skew above the headroom that
    // keeps re-triggering ~500-move corrections whose own adoption
    // transients spike the late windows (a 3-window limit cycle).
    s.rebalance.period_us = s.move_period_us;
    s.rebalance.headroom = 1.1;
    s.rebalance.max_moves_per_epoch = 100'000;
    return s;
  };

  std::vector<SweepJob> jobs;
  for (const int clients : populations) {
    const std::string pop = std::to_string(clients / 1000) + "k";
    {
      Scenario s = base_scenario(clients);
      s.shards = 1;
      jobs.push_back(SweepJob{"static-" + pop, 1.0,
                              Architecture::kSeveSharded, std::move(s)});
    }
    for (const int shards : shard_counts) {
      Scenario s = base_scenario(clients);
      s.shards = shards;
      jobs.push_back(SweepJob{"static-" + pop,
                              static_cast<double>(shards),
                              Architecture::kSeveSharded, s});
      s.rebalance.enabled = true;
      jobs.push_back(SweepJob{"rebalanced-" + pop,
                              static_cast<double>(shards),
                              Architecture::kSeveSharded, std::move(s)});
    }
  }

  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);

  std::printf(
      "\nload imbalance (max/mean of per-shard queue peaks) and handoffs:\n");
  int parity_failures = 0;
  size_t row = 0;
  for (const int clients : populations) {
    const uint64_t reference = results[row].report.final_state_digest;
    const size_t rows_this_pop = 1 + 2 * shard_counts.size();
    for (size_t k = 0; k < rows_this_pop; ++k, ++row) {
      const SweepJob& job = jobs[row];
      const RunReport& r = results[row].report;
      ShardCounters total;
      for (const ShardCounters& sc : r.shard_counters) total.Merge(sc);
      const bool parity = r.final_state_digest == reference;
      if (!parity) ++parity_failures;
      std::printf(
          "  %-16s clients=%6d shards=%2d  imbalance=%5.2f->%5.2f  "
          "planned=%6lld out=%6lld in=%6lld aborts=%lld pending=%lld  "
          "rehomed=%6lld  digest=%s\n",
          job.label.c_str(), clients, static_cast<int>(job.x),
          r.load_imbalance_first, r.load_imbalance_last,
          static_cast<long long>(r.migration_moves_planned),
          static_cast<long long>(total.migrations_out),
          static_cast<long long>(total.migrations_in),
          static_cast<long long>(total.migration_aborts),
          static_cast<long long>(total.migrations_pending),
          static_cast<long long>(total.rehomed_clients),
          parity ? "match" : "MISMATCH");
    }
  }

  bench::WriteBenchJson("fig6_sharded", num_jobs, quick, jobs, results);
  if (parity_failures != 0) {
    std::fprintf(stderr,
                 "FAIL: %d arm(s) diverged from their 1-shard digest\n",
                 parity_failures);
    return 1;
  }
  return 0;
}
