// Figure 6 companion: response time and commit-protocol mix of the
// zone-sharded serialization tier (DESIGN.md §12) as the shard count
// grows 1 -> 4 -> 8 -> 16 at a fixed client population.
//
// Expected shape: almost all actions keep the 1-RTT fast path (the
// Bloom-fold containment test routes them locally), a small
// boundary-proportional fraction escalates to the two-phase cross-shard
// commit and pays the extra shard-to-shard round trip, and the mean
// response time stays near the single-server Incomplete-World figure
// while per-shard serialization load drops roughly linearly.
//
// The workload is Table I's clustered spawn with the cluster count
// raised so crowds land all over the world: each extra shard adds cuts
// through inhabited territory, so the escalated fraction in
// BENCH_fig6_sharded.json grows with the shard count instead of being a
// fixed centre-of-the-world artifact.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Figure 6 (sharded) - serialization tier scaling across shards",
      "fast path stays ~1 RTT at any shard count; only boundary closures "
      "pay the cross-shard commit");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);
  const int clients = quick ? 16 : 64;

  std::vector<SweepJob> jobs;
  for (const int shards : {1, 4, 8, 16}) {
    Scenario s = Scenario::TableOne(clients);
    s.world.spawn.clusters = 16;
    s.world.spawn.cluster_sigma = 5.0;
    if (quick) {
      s.world.num_walls = 10000;
      s.moves_per_client = 20;
      // Keep per-cluster density at the full run's ~4 avatars.
      s.world.spawn.clusters = 4;
    }
    s.shards = shards;
    jobs.push_back(SweepJob{"SEVE-sharded", static_cast<double>(shards),
                            Architecture::kSeveSharded, std::move(s)});
  }
  const std::vector<SweepResult> results =
      bench::RunSweepAndPrint(jobs, num_jobs);

  std::printf("\ncommit-protocol mix per shard count:\n");
  for (size_t i = 0; i < results.size(); ++i) {
    ShardCounters total;
    for (const ShardCounters& sc : results[i].report.shard_counters) {
      total.Merge(sc);
    }
    std::printf(
        "  shards=%2d  fast_path=%6lld  escalated=%6lld  "
        "fast_fraction=%6.2f%%  tokens=%6lld  commits=%6lld  aborts=%lld\n",
        static_cast<int>(jobs[i].x), static_cast<long long>(total.fast_path),
        static_cast<long long>(total.escalated),
        total.FastPathFraction() * 100.0,
        static_cast<long long>(total.tokens_served),
        static_cast<long long>(total.commits),
        static_cast<long long>(total.aborts));
  }

  bench::WriteBenchJson("fig6_sharded", num_jobs, quick, jobs, results);
  return 0;
}
