// Section II-B quantified: the classical strongly consistent protocols
// (distributed locking, timestamp/OCC certification) against SEVE on the
// same contended workload.
//
// Paper's argument, measured here:
//   * Locking: "the minimum time required by a client to proceed to the
//     next conflicting transaction is twice the round trip time" —
//     response under contention ~2x SEVE's.
//   * OCC: "any change in the read set of a transaction... would
//     potentially cause the transaction to abort" — abort/retry storms
//     under contention; some transactions never commit.
//   * SEVE: one round trip regardless of contention, nothing aborts.

#include <vector>

#include "bench/bench_util.h"
#include "sim/sweep.h"

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Section II-B - classical protocols vs SEVE under contention",
      "locking ~2x RTT on conflict; OCC aborts/retries; SEVE one RTT");

  const bool quick = bench::QuickMode(argc, argv);
  // Contention knob: tighter clusters -> more overlapping read sets.
  struct Level {
    const char* label;
    double sigma;
  };
  const std::vector<Level> levels = quick
                                        ? std::vector<Level>{{"high", 8.0}}
                                        : std::vector<Level>{{"low", 80.0},
                                                             {"medium", 20.0},
                                                             {"high", 8.0}};

  const int num_jobs = bench::JobsArg(argc, argv);
  std::vector<SweepJob> jobs;
  std::vector<const char*> level_of_job;
  for (const Level& level : levels) {
    for (const Architecture arch :
         {Architecture::kLockBased, Architecture::kTimestampOcc,
          Architecture::kSeve}) {
      Scenario s = Scenario::TableOne(24);
      s.world.num_walls = 2000;
      s.world.spawn.pattern = SpawnConfig::Pattern::kClustered;
      s.world.spawn.clusters = 1;
      s.world.spawn.cluster_sigma = level.sigma;
      s.moves_per_client = quick ? 15 : 50;
      jobs.push_back(SweepJob{std::string(level.label) + "/" +
                                  ArchitectureName(arch),
                              level.sigma, arch, std::move(s)});
      level_of_job.push_back(level.label);
    }
  }
  const std::vector<SweepResult> results = RunSweep(jobs, num_jobs);

  std::printf("%-10s %-12s %14s %12s %12s %14s\n", "contention", "arch",
              "mean resp ms", "p95 ms", "committed", "divergences");
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (i > 0 && level_of_job[i] != level_of_job[i - 1]) {
      std::printf("\n");
    }
    const RunReport& r = results[i].report;
    std::printf("%-10s %-12s %14.1f %12.1f %12lld %14lld\n",
                level_of_job[i], ArchitectureName(jobs[i].arch),
                r.MeanResponseMs(), r.P95ResponseMs(),
                static_cast<long long>(r.server_stats.actions_committed),
                static_cast<long long>(r.consistency.mismatches));
  }
  bench::WriteBenchJson("sectionII_classic", num_jobs, quick, jobs,
                        results);
  return 0;
}
