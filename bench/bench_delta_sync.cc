// Delta-sync rejoin economics (DESIGN.md §15): a rejoining client whose
// replica diverges from the authoritative state by a fraction d should
// pay O(d) bytes on the wire, not O(world). Each point rebuilds the same
// divergence twice — once over the full-snapshot path, once over the IBF
// reconciliation handshake — and compares the actual catch-up bytes both
// directions of the link carried. The acceptance bar from the PR issue:
// at the 50,000-object world with <=1% divergence, the delta rejoin
// costs under 10% of the full snapshot, with bit-identical end states in
// every arm.
//
// The byte accounting is clean because the world is idle during the
// catch-up: no submissions, no commit notices, no dirty slots — every
// byte the two nodes send between Rejoin() and convergence belongs to
// the catch-up itself (request + strata + IBF + delta/snapshot stream).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "sim/sweep.h"
#include "tests/test_actions.h"

namespace seve {
namespace {

constexpr Micros kLatency = 10000;
constexpr Micros kRtt = 2 * kLatency;

struct DeltaConfig {
  int64_t objects = 0;
  double divergence = 0.0;  // fraction of objects stale on the client
  bool delta = false;       // IBF handshake vs full snapshot
};

struct DeltaPoint {
  DeltaConfig config;
  int64_t stale_objects = 0;
  int64_t catchup_bytes = 0;  // both directions, Rejoin() -> converged
  uint64_t end_digest = 0;
  SyncCounters sync;
  int64_t snapshot_chunks = 0;
  double wall_seconds = 0.0;
};

// The divergent replica: most stale objects hold an outdated value, a
// few are missing entirely, and a few extras linger that the authority
// has dropped — the three repair shapes PlanDelta distinguishes.
WorldState DivergentReplica(const WorldState& authority, int64_t stale) {
  WorldState replica = authority;
  for (int64_t k = 0; k < stale; ++k) {
    const ObjectId id(static_cast<uint64_t>(k) + 1);  // ids are 1..N
    if (k % 10 == 8) {
      (void)replica.Remove(id);  // missing: must be shipped
    } else if (k % 10 == 9) {
      replica.SetAttr(ObjectId(static_cast<uint64_t>(k) + 10'000'000), 1,
                      Value(int64_t{-1}));  // extra: must be removed
    } else {
      replica.SetAttr(id, 1, Value(int64_t{k + 777}));  // stale value
    }
  }
  return replica;
}

DeltaPoint RunPoint(const DeltaConfig& cfg) {
  EventLoop loop;
  Network net(&loop);
  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = false;
  opts.tick_us = 20'000;
  opts.commit_notice_period_us = 0;  // keep the idle world silent
  opts.delta_sync = cfg.delta;

  WorldState authority;
  for (int64_t i = 1; i <= cfg.objects; ++i) {
    authority.SetAttr(ObjectId(static_cast<uint64_t>(i)), 1, Value(i));
  }
  const int64_t stale = static_cast<int64_t>(
      static_cast<double>(cfg.objects) * cfg.divergence);

  InterestModel interest(10.0, kRtt, opts.omega);
  SeveServer server(NodeId(0), &loop, authority, CostModel{}, interest,
                    opts, AABB{{-100.0, -100.0}, {100.0, 100.0}});
  net.AddNode(&server);
  SeveClient client(
      NodeId(1), &loop, ClientId(0), NodeId(0),
      DivergentReplica(authority, stale),
      [](const Action&, const WorldState&) -> Micros { return 100; },
      /*install_us=*/10, opts);
  net.AddNode(&client);
  net.ConnectBidirectional(NodeId(0), NodeId(1),
                           LinkParams::LatencyOnly(kLatency));
  server.RegisterClient(ClientId(0), NodeId(1),
                        ProfileAt({0.0, 0.0}, 10.0));
  server.Start();
  loop.RunUntil(50'000);

  const int64_t bytes_before =
      server.traffic().sent.bytes + client.traffic().sent.bytes;
  client.Rejoin();
  loop.RunUntil(loop.now() + 5'000'000);
  const int64_t bytes_after =
      server.traffic().sent.bytes + client.traffic().sent.bytes;

  server.Stop();
  client.StopSync();
  loop.RunUntilIdle(10'000'000);
  server.FlushAll();
  loop.RunUntilIdle(10'000'000);

  DeltaPoint point;
  point.config = cfg;
  point.stale_objects = stale;
  point.catchup_bytes = bytes_after - bytes_before;
  point.sync = server.stats().sync;
  point.sync.Merge(client.stats().sync);
  point.snapshot_chunks = server.stats().snapshot_chunks;
  if (client.rejoining() ||
      client.stable().Digest() != server.authoritative().Digest()) {
    std::fprintf(stderr,
                 "FATAL: arm %s objects=%lld divergence=%.3f did not "
                 "converge to the authority\n",
                 cfg.delta ? "delta" : "full",
                 static_cast<long long>(cfg.objects), cfg.divergence);
    std::abort();
  }
  point.end_digest = server.authoritative().Digest();
  return point;
}

}  // namespace
}  // namespace seve

int main(int argc, char** argv) {
  using namespace seve;
  bench::Banner(
      "Delta-sync rejoin - bytes scale with the diff, not the world",
      "IBF reconciliation ships O(divergence) bytes; the 50k-object "
      "world at <=1% divergence rejoins for <10% of a full snapshot");

  const bool quick = bench::QuickMode(argc, argv);
  const int num_jobs = bench::JobsArg(argc, argv);

  const std::vector<int64_t> worlds =
      quick ? std::vector<int64_t>{2'000, 10'000}
            : std::vector<int64_t>{10'000, 50'000};
  const std::vector<double> divergences = {0.001, 0.01, 0.1};
  std::vector<DeltaConfig> configs;
  for (const int64_t n : worlds) {
    for (const double d : divergences) {
      configs.push_back({n, d, /*delta=*/false});
      configs.push_back({n, d, /*delta=*/true});
    }
  }

  std::vector<DeltaPoint> points(configs.size());
  ParallelFor(configs.size(), num_jobs, [&](size_t i) {
    const auto start = std::chrono::steady_clock::now();
    points[i] = RunPoint(configs[i]);
    points[i].wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
  });

  std::printf("%-9s %-11s %-7s %-7s %-13s %-12s %-10s\n", "objects",
              "divergence", "stale", "arm", "catchup KB", "shipped",
              "ratio");
  bool accepted = true;
  for (size_t i = 0; i + 1 < points.size(); i += 2) {
    const DeltaPoint& full = points[i];
    const DeltaPoint& delta = points[i + 1];
    const double ratio = static_cast<double>(delta.catchup_bytes) /
                         static_cast<double>(full.catchup_bytes);
    std::printf("%-9lld %-11.3f %-7lld %-7s %-13.1f %-12s %-10s\n",
                static_cast<long long>(full.config.objects),
                full.config.divergence,
                static_cast<long long>(full.stale_objects), "full",
                static_cast<double>(full.catchup_bytes) / 1024.0, "-", "-");
    std::printf("%-9lld %-11.3f %-7lld %-7s %-13.1f %-12lld %-10.4f\n",
                static_cast<long long>(delta.config.objects),
                delta.config.divergence,
                static_cast<long long>(delta.stale_objects), "delta",
                static_cast<double>(delta.catchup_bytes) / 1024.0,
                static_cast<long long>(delta.sync.objects_shipped), ratio);
    // Every arm must land on the same authoritative digest.
    if (full.end_digest != delta.end_digest) {
      std::fprintf(stderr, "FATAL: digest mismatch between arms\n");
      return 1;
    }
    // Acceptance: the largest world at <=1% divergence rejoins for <10%
    // of the snapshot bytes (the quick worlds get a looser sanity bar —
    // the fixed strata overhead is a bigger share of a smaller world).
    const double bar =
        full.config.objects == worlds.back() && !quick ? 0.10 : 0.50;
    if (full.config.divergence <= 0.01 && ratio >= bar) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAIL: objects=%lld divergence=%.3f "
                   "ratio=%.4f (bar %.2f)\n",
                   static_cast<long long>(full.config.objects),
                   full.config.divergence, ratio, bar);
      accepted = false;
    }
    if (delta.sync.delta_rejoins + delta.sync.fallbacks != 1) {
      std::fprintf(stderr, "ACCEPTANCE FAIL: delta arm ran no handshake\n");
      accepted = false;
    }
  }

  std::string j = "{\n  \"bench\": \"delta_sync\",\n";
  j += "  \"schema_version\": 1,\n";
  j += "  \"jobs\": " + std::to_string(num_jobs) + ",\n";
  j += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
  j += "  \"rows\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const DeltaPoint& p = points[i];
    char row[768];
    std::snprintf(
        row, sizeof(row),
        "    {\"objects\": %lld, \"divergence\": %.6g, \"stale\": %lld, "
        "\"arm\": \"%s\", \"catchup_bytes\": %lld, \"sync_rounds\": %lld, "
        "\"sync_strata_bytes\": %lld, \"sync_ibf_cells\": %lld, "
        "\"delta_rejoins\": %lld, \"sync_fallbacks\": %lld, "
        "\"sync_objects_shipped\": %lld, \"sync_objects_removed\": %lld, "
        "\"sync_delta_bytes\": %lld, \"sync_full_bytes_estimate\": %lld, "
        "\"snapshot_chunks\": %lld, \"wall_seconds\": %.6g}%s\n",
        static_cast<long long>(p.config.objects), p.config.divergence,
        static_cast<long long>(p.stale_objects),
        p.config.delta ? "delta" : "full",
        static_cast<long long>(p.catchup_bytes),
        static_cast<long long>(p.sync.sync_rounds),
        static_cast<long long>(p.sync.strata_bytes),
        static_cast<long long>(p.sync.ibf_cells),
        static_cast<long long>(p.sync.delta_rejoins),
        static_cast<long long>(p.sync.fallbacks),
        static_cast<long long>(p.sync.objects_shipped),
        static_cast<long long>(p.sync.objects_removed),
        static_cast<long long>(p.sync.delta_bytes),
        static_cast<long long>(p.sync.full_bytes_estimate),
        static_cast<long long>(p.snapshot_chunks), p.wall_seconds,
        i + 1 < points.size() ? "," : "");
    j += row;
  }
  j += "  ]\n}\n";
  if (std::FILE* f = std::fopen("BENCH_delta_sync.json", "w")) {
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("wrote BENCH_delta_sync.json (%zu rows, jobs=%d)\n",
                points.size(), num_jobs);
  } else {
    std::fprintf(stderr, "WARNING: cannot write BENCH_delta_sync.json\n");
  }
  return accepted ? 0 : 1;
}
