// Dining philosophers around the equator: Section III-E's worst case,
// live. Every philosopher grabs both forks in the same tick, so although
// direct conflicts are only pairwise, the transitive conflict closure
// wraps the whole ring. The Information Bound Model drops a few grabs at
// regular intervals, cutting the ring into short chains — most
// philosophers still get an answer within the latency bound.
//
//   ./dining_philosophers [philosophers] [threshold]
//
// Try threshold 0 (disabled -> giant closures) vs ~2.5x the seat spacing.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "world/dining.h"

int main(int argc, char** argv) {
  using namespace seve;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.0;
  const bool dropping = threshold > 0.0;

  const DiningTable table{n, 100.0};
  std::printf("%d philosophers on a ring of radius %.0f (seat spacing "
              "%.1f); chain-breaking %s\n\n",
              n, table.ring_radius, table.NeighbourSpacing(),
              dropping ? "ON" : "OFF");

  constexpr Micros kLatency = 30 * kMicrosPerMilli;
  EventLoop loop;
  Network net(&loop);
  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = dropping;
  opts.threshold = threshold;
  InterestModel interest(1.0, 2 * kLatency, opts.omega);
  SeveServer server(NodeId(0), &loop, table.InitialState(), CostModel{},
                    interest, opts,
                    AABB{{-150.0, -150.0}, {150.0, 150.0}});
  net.AddNode(&server);

  std::vector<std::unique_ptr<SeveClient>> clients;
  for (int i = 0; i < n; ++i) {
    auto client = std::make_unique<SeveClient>(
        NodeId(static_cast<uint64_t>(i) + 1), &loop,
        ClientId(static_cast<uint64_t>(i)), NodeId(0),
        table.InitialState(),
        [](const Action&, const WorldState&) -> Micros { return 100; },
        /*install_us=*/10, opts);
    net.AddNode(client.get());
    net.ConnectBidirectional(NodeId(0), client->id(),
                             LinkParams::LatencyOnly(kLatency));
    InterestProfile profile;
    profile.position = table.PhilosopherPos(i);
    profile.radius = table.NeighbourSpacing();
    server.RegisterClient(client->client_id(), client->id(), profile);
    clients.push_back(std::move(client));
  }
  server.Start();

  // Everyone grabs at t=0 — the same simulation tick.
  for (int i = 0; i < n; ++i) {
    clients[static_cast<size_t>(i)]->SubmitLocalAction(
        std::make_shared<PickForksAction>(
            ActionId(static_cast<uint64_t>(i) + 1),
            ClientId(static_cast<uint64_t>(i)), 0, table, i));
  }

  loop.RunUntil(3 * kMicrosPerSecond);
  server.Stop();
  loop.RunUntilIdle(5'000'000);
  server.FlushAll();
  loop.RunUntilIdle(5'000'000);

  int eating = 0;
  std::printf("outcome: ");
  for (int i = 0; i < n; ++i) {
    const int64_t left = server.authoritative()
                             .GetAttr(table.ForkId((i + n - 1) % n),
                                      kForkHolder)
                             .AsInt();
    const bool eats = left == i + 1;
    if (eats) ++eating;
    std::printf("%c", eats ? 'E' : '.');
  }
  std::printf("   (E = got both forks)\n\n");

  Histogram responses;
  for (const auto& client : clients) {
    responses.Merge(client->stats().response_time_us);
  }
  std::printf("eating: %d / %d\n", eating, n);
  std::printf("grabs dropped by chain breaking: %lld\n",
              static_cast<long long>(server.stats().actions_dropped));
  std::printf("largest closure batch shipped: %lld actions\n",
              static_cast<long long>(server.stats().closure_size.max()));
  std::printf("response time: mean %.0f ms, max %.0f ms\n",
              responses.Mean() / 1000.0,
              static_cast<double>(responses.max()) / 1000.0);
  return 0;
}
