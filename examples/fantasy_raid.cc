// Fantasy raid: the introduction's motivating scenario, built directly on
// the protocol API (no simulation runner) with custom game actions.
//
// A raid party fights while a healer repeatedly casts the "scrying
// spell" — identify and heal the most wounded ally in the whole crowd.
// The spell's read set spans every ally regardless of walls or sight
// lines, which is exactly the action that defeats visibility-based
// partitioning (Section I). Under SEVE's action-based protocol every
// client converges on the same battle outcome; the server never executes
// a single spell.
//
// Demonstrates:
//   * subclassing seve::Action (AttackAction / ScryHealAction),
//   * wiring SeveServer/SeveClient over the simulated network by hand,
//   * completion-driven commits and the authoritative state ζS.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "net/network.h"
#include "protocol/seve_client.h"
#include "protocol/seve_server.h"
#include "world/attrs.h"
#include "world/spell_action.h"

namespace {

using namespace seve;

constexpr int kRaiders = 8;
constexpr Micros kLatency = 40 * kMicrosPerMilli;
constexpr Micros kRtt = 2 * kLatency;

ObjectId Avatar(int i) { return ObjectId(static_cast<uint64_t>(i) + 1); }

WorldState RaidState() {
  WorldState state;
  for (int i = 0; i < kRaiders; ++i) {
    Object obj(Avatar(i));
    obj.Set(kAttrHealth, Value(100.0));
    obj.Set(kAttrPosition,
            Value(Vec2{static_cast<double>(10 * i), 0.0}));
    state.Upsert(std::move(obj));
  }
  return state;
}

InterestProfile RaidProfile(int i) {
  InterestProfile profile;
  profile.position = {static_cast<double>(10 * i), 0.0};
  profile.radius = 100.0;  // raid-wide influence: everyone matters
  return profile;
}

}  // namespace

int main() {
  EventLoop loop;
  Network net(&loop);

  SeveOptions opts;
  opts.proactive_push = true;
  opts.dropping = false;  // a raid is one conflict domain; never shed
  InterestModel interest(/*max_speed=*/5.0, kRtt, opts.omega);
  SeveServer server(NodeId(0), &loop, RaidState(), CostModel{}, interest,
                    opts, AABB{{-50.0, -50.0}, {150.0, 50.0}});
  net.AddNode(&server);

  ActionCostFn spell_cost = [](const Action&, const WorldState&) -> Micros {
    return 500;  // spells are cheap to evaluate; the point is ordering
  };
  std::vector<std::unique_ptr<SeveClient>> clients;
  for (int i = 0; i < kRaiders; ++i) {
    auto client = std::make_unique<SeveClient>(
        NodeId(static_cast<uint64_t>(i) + 1), &loop,
        ClientId(static_cast<uint64_t>(i)), NodeId(0), RaidState(),
        spell_cost, /*install_us=*/20, opts);
    net.AddNode(client.get());
    net.ConnectBidirectional(NodeId(0), client->id(),
                             LinkParams::FromKbps(kLatency, 256.0));
    server.RegisterClient(client->client_id(), client->id(),
                          RaidProfile(i));
    clients.push_back(std::move(client));
  }
  server.Start();

  // The boss (client 0, avatar 1) swipes at a random raider every 400 ms;
  // the healer (client 7) scries-and-heals every 600 ms.
  Rng rng(2026);
  uint64_t next_action = 1;
  for (int round = 0; round < 12; ++round) {
    const VirtualTime when = (round + 1) * 400 * kMicrosPerMilli;
    const int victim =
        1 + static_cast<int>(rng.NextBounded(kRaiders - 1));
    loop.At(when, [&, victim]() {
      clients[0]->SubmitLocalAction(std::make_shared<AttackAction>(
          ActionId(next_action++), ClientId(0), 0, Avatar(0),
          Avatar(victim), /*damage=*/25.0, RaidProfile(0)));
    });
  }
  ObjectSet party;
  for (int i = 1; i < kRaiders; ++i) party.Insert(Avatar(i));
  for (int round = 0; round < 8; ++round) {
    const VirtualTime when = (round + 1) * 600 * kMicrosPerMilli;
    loop.At(when, [&]() {
      clients[7]->SubmitLocalAction(std::make_shared<ScryHealAction>(
          ActionId(next_action++), ClientId(7), 0, Avatar(7), party,
          /*heal=*/20.0, RaidProfile(7)));
    });
  }

  loop.RunUntil(8 * kMicrosPerSecond);
  server.Stop();
  loop.RunUntilIdle(1'000'000);
  server.FlushAll();
  loop.RunUntilIdle(1'000'000);

  std::printf("Raid over. Authoritative health at the server:\n");
  for (int i = 0; i < kRaiders; ++i) {
    std::printf("  raider %d: %5.1f hp\n", i,
                server.authoritative().GetAttr(Avatar(i), kAttrHealth)
                    .AsDouble());
  }

  // Every replica that evaluated an action agrees with the committed
  // result — the scrying spell picked the same target everywhere.
  int64_t checked = 0, divergent = 0;
  for (const auto& client : clients) {
    client->eval_digests().ForEach([&](SeqNum pos, ResultDigest digest) {
      const ResultDigest* committed = server.committed_digests().Find(pos);
      if (committed == nullptr) return;
      ++checked;
      if (*committed != digest) ++divergent;
    });
  }
  std::printf("\nreplica evaluations checked: %lld, divergent: %lld\n",
              static_cast<long long>(checked),
              static_cast<long long>(divergent));
  std::printf("server committed %lld actions without executing any\n",
              static_cast<long long>(server.stats().actions_committed));
  return divergent == 0 ? 0 : 1;
}
