// Quickstart: run the Table-I workload at a small scale under SEVE and
// the Central baseline and print both reports.
#include <cstdio>

#include "core/engine.h"

int main() {
  seve::Engine engine;
  seve::Scenario scenario = seve::Scenario::TableOne(/*clients=*/8);
  scenario.world.num_walls = 2000;  // keep the quickstart snappy
  scenario.moves_per_client = 20;

  for (const seve::Architecture arch :
       {seve::Architecture::kSeve, seve::Architecture::kCentral}) {
    auto report = engine.Run(arch, scenario);
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n\n", report->Summary().c_str());
  }
  return 0;
}
