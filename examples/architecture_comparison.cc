// Architecture comparison: runs the same Manhattan People workload under
// every net-VE architecture in the library and prints a side-by-side
// table — a miniature of the paper's whole evaluation section.
//
//   ./architecture_comparison [clients] [moves]
//
// Watch three things as you raise the client count:
//   * Central and Broadcast response times collapse (Figure 6),
//   * Broadcast's per-client traffic grows linearly, i.e. total traffic
//     quadratically (Figure 9),
//   * RING reports consistency mismatches while SEVE never does
//     (Theorem 1 / Figure 3).

#include <cstdio>
#include <cstdlib>

#include "core/engine.h"

int main(int argc, char** argv) {
  const int clients = argc > 1 ? std::atoi(argv[1]) : 24;
  const int moves = argc > 2 ? std::atoi(argv[2]) : 40;

  seve::Engine engine;
  seve::Scenario scenario = seve::Scenario::TableOne(clients);
  scenario.world.num_walls = 20000;  // keep the demo snappy
  scenario.moves_per_client = moves;

  std::printf("Manhattan People: %d clients, %d moves each, %d walls\n\n",
              clients, moves, scenario.world.num_walls);
  std::printf("%-16s %14s %12s %12s %12s %14s\n", "architecture",
              "mean resp ms", "p95 ms", "kb/client", "drops %",
              "divergences");

  const auto reports = engine.Compare(
      {seve::Architecture::kSeve, seve::Architecture::kIncompleteWorld,
       seve::Architecture::kBasic, seve::Architecture::kCentral,
       seve::Architecture::kBroadcast, seve::Architecture::kRing,
       seve::Architecture::kZoned, seve::Architecture::kLockBased,
       seve::Architecture::kTimestampOcc},
      scenario);
  if (!reports.ok()) {
    std::fprintf(stderr, "error: %s\n", reports.status().ToString().c_str());
    return 1;
  }
  for (const seve::RunReport& r : *reports) {
    std::printf("%-16s %14.1f %12.1f %12.1f %12.2f %14lld\n",
                seve::ArchitectureName(r.architecture), r.MeanResponseMs(),
                r.P95ResponseMs(), r.per_client_kb, r.drop_rate * 100.0,
                static_cast<long long>(r.consistency.mismatches));
  }
  std::printf(
      "\n(divergences = replica evaluations that disagree with the "
      "authoritative result; SEVE & Basic must always show 0)\n");
  return 0;
}
