# Empty compiler generated dependencies file for scenario_report_test.
# This may be replaced when dependencies are built.
