# Empty dependencies file for classic_protocols_test.
# This may be replaced when dependencies are built.
