file(REMOVE_RECURSE
  "CMakeFiles/classic_protocols_test.dir/classic_protocols_test.cc.o"
  "CMakeFiles/classic_protocols_test.dir/classic_protocols_test.cc.o.d"
  "classic_protocols_test"
  "classic_protocols_test.pdb"
  "classic_protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classic_protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
