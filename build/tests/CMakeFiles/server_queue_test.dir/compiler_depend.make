# Empty compiler generated dependencies file for server_queue_test.
# This may be replaced when dependencies are built.
