file(REMOVE_RECURSE
  "CMakeFiles/server_queue_test.dir/server_queue_test.cc.o"
  "CMakeFiles/server_queue_test.dir/server_queue_test.cc.o.d"
  "server_queue_test"
  "server_queue_test.pdb"
  "server_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
