# Empty dependencies file for seve_protocol_test.
# This may be replaced when dependencies are built.
