file(REMOVE_RECURSE
  "CMakeFiles/seve_protocol_test.dir/seve_protocol_test.cc.o"
  "CMakeFiles/seve_protocol_test.dir/seve_protocol_test.cc.o.d"
  "seve_protocol_test"
  "seve_protocol_test.pdb"
  "seve_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
