file(REMOVE_RECURSE
  "CMakeFiles/dining_philosophers_test.dir/dining_philosophers_test.cc.o"
  "CMakeFiles/dining_philosophers_test.dir/dining_philosophers_test.cc.o.d"
  "dining_philosophers_test"
  "dining_philosophers_test.pdb"
  "dining_philosophers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dining_philosophers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
