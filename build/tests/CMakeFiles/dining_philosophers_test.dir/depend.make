# Empty dependencies file for dining_philosophers_test.
# This may be replaced when dependencies are built.
