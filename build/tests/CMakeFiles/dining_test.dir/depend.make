# Empty dependencies file for dining_test.
# This may be replaced when dependencies are built.
