file(REMOVE_RECURSE
  "CMakeFiles/dining_test.dir/dining_test.cc.o"
  "CMakeFiles/dining_test.dir/dining_test.cc.o.d"
  "dining_test"
  "dining_test.pdb"
  "dining_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
