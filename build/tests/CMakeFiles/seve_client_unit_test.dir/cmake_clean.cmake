file(REMOVE_RECURSE
  "CMakeFiles/seve_client_unit_test.dir/seve_client_unit_test.cc.o"
  "CMakeFiles/seve_client_unit_test.dir/seve_client_unit_test.cc.o.d"
  "seve_client_unit_test"
  "seve_client_unit_test.pdb"
  "seve_client_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_client_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
