# Empty compiler generated dependencies file for seve_client_unit_test.
# This may be replaced when dependencies are built.
