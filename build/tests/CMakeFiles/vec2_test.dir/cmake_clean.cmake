file(REMOVE_RECURSE
  "CMakeFiles/vec2_test.dir/vec2_test.cc.o"
  "CMakeFiles/vec2_test.dir/vec2_test.cc.o.d"
  "vec2_test"
  "vec2_test.pdb"
  "vec2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vec2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
