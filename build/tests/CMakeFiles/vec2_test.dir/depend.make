# Empty dependencies file for vec2_test.
# This may be replaced when dependencies are built.
