file(REMOVE_RECURSE
  "CMakeFiles/ring_inconsistency_test.dir/ring_inconsistency_test.cc.o"
  "CMakeFiles/ring_inconsistency_test.dir/ring_inconsistency_test.cc.o.d"
  "ring_inconsistency_test"
  "ring_inconsistency_test.pdb"
  "ring_inconsistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_inconsistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
