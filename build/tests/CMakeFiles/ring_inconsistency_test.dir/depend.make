# Empty dependencies file for ring_inconsistency_test.
# This may be replaced when dependencies are built.
