file(REMOVE_RECURSE
  "CMakeFiles/basic_protocol_test.dir/basic_protocol_test.cc.o"
  "CMakeFiles/basic_protocol_test.dir/basic_protocol_test.cc.o.d"
  "basic_protocol_test"
  "basic_protocol_test.pdb"
  "basic_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basic_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
