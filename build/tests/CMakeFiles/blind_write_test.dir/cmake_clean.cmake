file(REMOVE_RECURSE
  "CMakeFiles/blind_write_test.dir/blind_write_test.cc.o"
  "CMakeFiles/blind_write_test.dir/blind_write_test.cc.o.d"
  "blind_write_test"
  "blind_write_test.pdb"
  "blind_write_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blind_write_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
