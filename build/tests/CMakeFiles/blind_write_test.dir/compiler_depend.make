# Empty compiler generated dependencies file for blind_write_test.
# This may be replaced when dependencies are built.
