# Empty compiler generated dependencies file for world_state_test.
# This may be replaced when dependencies are built.
