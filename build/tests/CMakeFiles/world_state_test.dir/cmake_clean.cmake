file(REMOVE_RECURSE
  "CMakeFiles/world_state_test.dir/world_state_test.cc.o"
  "CMakeFiles/world_state_test.dir/world_state_test.cc.o.d"
  "world_state_test"
  "world_state_test.pdb"
  "world_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/world_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
