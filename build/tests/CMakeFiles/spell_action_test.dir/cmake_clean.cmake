file(REMOVE_RECURSE
  "CMakeFiles/spell_action_test.dir/spell_action_test.cc.o"
  "CMakeFiles/spell_action_test.dir/spell_action_test.cc.o.d"
  "spell_action_test"
  "spell_action_test.pdb"
  "spell_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spell_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
