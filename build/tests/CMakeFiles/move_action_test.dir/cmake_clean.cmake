file(REMOVE_RECURSE
  "CMakeFiles/move_action_test.dir/move_action_test.cc.o"
  "CMakeFiles/move_action_test.dir/move_action_test.cc.o.d"
  "move_action_test"
  "move_action_test.pdb"
  "move_action_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/move_action_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
