# Empty dependencies file for rw_set_test.
# This may be replaced when dependencies are built.
