file(REMOVE_RECURSE
  "CMakeFiles/rw_set_test.dir/rw_set_test.cc.o"
  "CMakeFiles/rw_set_test.dir/rw_set_test.cc.o.d"
  "rw_set_test"
  "rw_set_test.pdb"
  "rw_set_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rw_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
