
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ordering_repair_test.cc" "tests/CMakeFiles/ordering_repair_test.dir/ordering_repair_test.cc.o" "gcc" "tests/CMakeFiles/ordering_repair_test.dir/ordering_repair_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/seve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/seve_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/seve_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/seve_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/seve_net.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/seve_world.dir/DependInfo.cmake"
  "/root/repo/build/src/action/CMakeFiles/seve_action.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seve_store.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/seve_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
