file(REMOVE_RECURSE
  "CMakeFiles/ordering_repair_test.dir/ordering_repair_test.cc.o"
  "CMakeFiles/ordering_repair_test.dir/ordering_repair_test.cc.o.d"
  "ordering_repair_test"
  "ordering_repair_test.pdb"
  "ordering_repair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
