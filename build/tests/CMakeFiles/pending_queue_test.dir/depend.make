# Empty dependencies file for pending_queue_test.
# This may be replaced when dependencies are built.
