file(REMOVE_RECURSE
  "CMakeFiles/pending_queue_test.dir/pending_queue_test.cc.o"
  "CMakeFiles/pending_queue_test.dir/pending_queue_test.cc.o.d"
  "pending_queue_test"
  "pending_queue_test.pdb"
  "pending_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pending_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
