# Empty compiler generated dependencies file for manhattan_world_test.
# This may be replaced when dependencies are built.
