file(REMOVE_RECURSE
  "CMakeFiles/manhattan_world_test.dir/manhattan_world_test.cc.o"
  "CMakeFiles/manhattan_world_test.dir/manhattan_world_test.cc.o.d"
  "manhattan_world_test"
  "manhattan_world_test.pdb"
  "manhattan_world_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manhattan_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
