file(REMOVE_RECURSE
  "CMakeFiles/wall_test.dir/wall_test.cc.o"
  "CMakeFiles/wall_test.dir/wall_test.cc.o.d"
  "wall_test"
  "wall_test.pdb"
  "wall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
