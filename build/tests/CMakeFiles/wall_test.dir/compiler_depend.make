# Empty compiler generated dependencies file for wall_test.
# This may be replaced when dependencies are built.
