file(REMOVE_RECURSE
  "CMakeFiles/fantasy_raid.dir/fantasy_raid.cc.o"
  "CMakeFiles/fantasy_raid.dir/fantasy_raid.cc.o.d"
  "fantasy_raid"
  "fantasy_raid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fantasy_raid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
