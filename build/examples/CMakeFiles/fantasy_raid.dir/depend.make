# Empty dependencies file for fantasy_raid.
# This may be replaced when dependencies are built.
