file(REMOVE_RECURSE
  "CMakeFiles/architecture_comparison.dir/architecture_comparison.cc.o"
  "CMakeFiles/architecture_comparison.dir/architecture_comparison.cc.o.d"
  "architecture_comparison"
  "architecture_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
