file(REMOVE_RECURSE
  "libseve_spatial.a"
)
