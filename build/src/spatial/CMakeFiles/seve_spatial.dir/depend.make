# Empty dependencies file for seve_spatial.
# This may be replaced when dependencies are built.
