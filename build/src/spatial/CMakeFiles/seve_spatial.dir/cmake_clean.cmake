file(REMOVE_RECURSE
  "CMakeFiles/seve_spatial.dir/geometry.cc.o"
  "CMakeFiles/seve_spatial.dir/geometry.cc.o.d"
  "CMakeFiles/seve_spatial.dir/grid_index.cc.o"
  "CMakeFiles/seve_spatial.dir/grid_index.cc.o.d"
  "libseve_spatial.a"
  "libseve_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
