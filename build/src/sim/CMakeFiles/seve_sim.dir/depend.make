# Empty dependencies file for seve_sim.
# This may be replaced when dependencies are built.
