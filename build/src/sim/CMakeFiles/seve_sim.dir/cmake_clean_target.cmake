file(REMOVE_RECURSE
  "libseve_sim.a"
)
