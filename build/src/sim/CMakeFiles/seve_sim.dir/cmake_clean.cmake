file(REMOVE_RECURSE
  "CMakeFiles/seve_sim.dir/consistency.cc.o"
  "CMakeFiles/seve_sim.dir/consistency.cc.o.d"
  "CMakeFiles/seve_sim.dir/report.cc.o"
  "CMakeFiles/seve_sim.dir/report.cc.o.d"
  "CMakeFiles/seve_sim.dir/runner.cc.o"
  "CMakeFiles/seve_sim.dir/runner.cc.o.d"
  "CMakeFiles/seve_sim.dir/scenario.cc.o"
  "CMakeFiles/seve_sim.dir/scenario.cc.o.d"
  "libseve_sim.a"
  "libseve_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
