# Empty compiler generated dependencies file for seve_net.
# This may be replaced when dependencies are built.
