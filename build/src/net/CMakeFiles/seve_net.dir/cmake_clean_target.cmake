file(REMOVE_RECURSE
  "libseve_net.a"
)
