file(REMOVE_RECURSE
  "CMakeFiles/seve_net.dir/event_loop.cc.o"
  "CMakeFiles/seve_net.dir/event_loop.cc.o.d"
  "CMakeFiles/seve_net.dir/network.cc.o"
  "CMakeFiles/seve_net.dir/network.cc.o.d"
  "CMakeFiles/seve_net.dir/node.cc.o"
  "CMakeFiles/seve_net.dir/node.cc.o.d"
  "libseve_net.a"
  "libseve_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
