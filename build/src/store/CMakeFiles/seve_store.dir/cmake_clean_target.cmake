file(REMOVE_RECURSE
  "libseve_store.a"
)
