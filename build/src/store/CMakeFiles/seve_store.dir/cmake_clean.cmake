file(REMOVE_RECURSE
  "CMakeFiles/seve_store.dir/object.cc.o"
  "CMakeFiles/seve_store.dir/object.cc.o.d"
  "CMakeFiles/seve_store.dir/rw_set.cc.o"
  "CMakeFiles/seve_store.dir/rw_set.cc.o.d"
  "CMakeFiles/seve_store.dir/value.cc.o"
  "CMakeFiles/seve_store.dir/value.cc.o.d"
  "CMakeFiles/seve_store.dir/world_state.cc.o"
  "CMakeFiles/seve_store.dir/world_state.cc.o.d"
  "libseve_store.a"
  "libseve_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
