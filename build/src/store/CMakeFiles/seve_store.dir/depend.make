# Empty dependencies file for seve_store.
# This may be replaced when dependencies are built.
