
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/object.cc" "src/store/CMakeFiles/seve_store.dir/object.cc.o" "gcc" "src/store/CMakeFiles/seve_store.dir/object.cc.o.d"
  "/root/repo/src/store/rw_set.cc" "src/store/CMakeFiles/seve_store.dir/rw_set.cc.o" "gcc" "src/store/CMakeFiles/seve_store.dir/rw_set.cc.o.d"
  "/root/repo/src/store/value.cc" "src/store/CMakeFiles/seve_store.dir/value.cc.o" "gcc" "src/store/CMakeFiles/seve_store.dir/value.cc.o.d"
  "/root/repo/src/store/world_state.cc" "src/store/CMakeFiles/seve_store.dir/world_state.cc.o" "gcc" "src/store/CMakeFiles/seve_store.dir/world_state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seve_common.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/seve_spatial.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
