# Empty compiler generated dependencies file for seve_core.
# This may be replaced when dependencies are built.
