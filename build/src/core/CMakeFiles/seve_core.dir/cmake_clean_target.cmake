file(REMOVE_RECURSE
  "libseve_core.a"
)
