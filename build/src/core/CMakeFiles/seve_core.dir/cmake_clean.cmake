file(REMOVE_RECURSE
  "CMakeFiles/seve_core.dir/engine.cc.o"
  "CMakeFiles/seve_core.dir/engine.cc.o.d"
  "libseve_core.a"
  "libseve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
