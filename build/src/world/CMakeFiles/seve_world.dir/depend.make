# Empty dependencies file for seve_world.
# This may be replaced when dependencies are built.
