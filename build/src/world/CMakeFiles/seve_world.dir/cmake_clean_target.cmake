file(REMOVE_RECURSE
  "libseve_world.a"
)
