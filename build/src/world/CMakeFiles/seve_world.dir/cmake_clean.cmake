file(REMOVE_RECURSE
  "CMakeFiles/seve_world.dir/dining.cc.o"
  "CMakeFiles/seve_world.dir/dining.cc.o.d"
  "CMakeFiles/seve_world.dir/manhattan_world.cc.o"
  "CMakeFiles/seve_world.dir/manhattan_world.cc.o.d"
  "CMakeFiles/seve_world.dir/move_action.cc.o"
  "CMakeFiles/seve_world.dir/move_action.cc.o.d"
  "CMakeFiles/seve_world.dir/spell_action.cc.o"
  "CMakeFiles/seve_world.dir/spell_action.cc.o.d"
  "CMakeFiles/seve_world.dir/wall.cc.o"
  "CMakeFiles/seve_world.dir/wall.cc.o.d"
  "libseve_world.a"
  "libseve_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
