
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/dining.cc" "src/world/CMakeFiles/seve_world.dir/dining.cc.o" "gcc" "src/world/CMakeFiles/seve_world.dir/dining.cc.o.d"
  "/root/repo/src/world/manhattan_world.cc" "src/world/CMakeFiles/seve_world.dir/manhattan_world.cc.o" "gcc" "src/world/CMakeFiles/seve_world.dir/manhattan_world.cc.o.d"
  "/root/repo/src/world/move_action.cc" "src/world/CMakeFiles/seve_world.dir/move_action.cc.o" "gcc" "src/world/CMakeFiles/seve_world.dir/move_action.cc.o.d"
  "/root/repo/src/world/spell_action.cc" "src/world/CMakeFiles/seve_world.dir/spell_action.cc.o" "gcc" "src/world/CMakeFiles/seve_world.dir/spell_action.cc.o.d"
  "/root/repo/src/world/wall.cc" "src/world/CMakeFiles/seve_world.dir/wall.cc.o" "gcc" "src/world/CMakeFiles/seve_world.dir/wall.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/action/CMakeFiles/seve_action.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seve_store.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/seve_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
