file(REMOVE_RECURSE
  "libseve_action.a"
)
