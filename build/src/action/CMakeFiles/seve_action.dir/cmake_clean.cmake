file(REMOVE_RECURSE
  "CMakeFiles/seve_action.dir/action.cc.o"
  "CMakeFiles/seve_action.dir/action.cc.o.d"
  "CMakeFiles/seve_action.dir/blind_write.cc.o"
  "CMakeFiles/seve_action.dir/blind_write.cc.o.d"
  "libseve_action.a"
  "libseve_action.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_action.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
