# Empty compiler generated dependencies file for seve_action.
# This may be replaced when dependencies are built.
