
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/action/action.cc" "src/action/CMakeFiles/seve_action.dir/action.cc.o" "gcc" "src/action/CMakeFiles/seve_action.dir/action.cc.o.d"
  "/root/repo/src/action/blind_write.cc" "src/action/CMakeFiles/seve_action.dir/blind_write.cc.o" "gcc" "src/action/CMakeFiles/seve_action.dir/blind_write.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/seve_store.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/seve_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
