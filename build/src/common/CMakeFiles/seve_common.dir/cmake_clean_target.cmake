file(REMOVE_RECURSE
  "libseve_common.a"
)
