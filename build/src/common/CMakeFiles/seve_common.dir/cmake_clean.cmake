file(REMOVE_RECURSE
  "CMakeFiles/seve_common.dir/histogram.cc.o"
  "CMakeFiles/seve_common.dir/histogram.cc.o.d"
  "CMakeFiles/seve_common.dir/logging.cc.o"
  "CMakeFiles/seve_common.dir/logging.cc.o.d"
  "CMakeFiles/seve_common.dir/metrics.cc.o"
  "CMakeFiles/seve_common.dir/metrics.cc.o.d"
  "CMakeFiles/seve_common.dir/rng.cc.o"
  "CMakeFiles/seve_common.dir/rng.cc.o.d"
  "CMakeFiles/seve_common.dir/status.cc.o"
  "CMakeFiles/seve_common.dir/status.cc.o.d"
  "libseve_common.a"
  "libseve_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
