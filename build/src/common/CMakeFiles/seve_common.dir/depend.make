# Empty dependencies file for seve_common.
# This may be replaced when dependencies are built.
