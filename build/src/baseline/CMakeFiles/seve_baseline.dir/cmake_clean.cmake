file(REMOVE_RECURSE
  "CMakeFiles/seve_baseline.dir/broadcast.cc.o"
  "CMakeFiles/seve_baseline.dir/broadcast.cc.o.d"
  "CMakeFiles/seve_baseline.dir/central.cc.o"
  "CMakeFiles/seve_baseline.dir/central.cc.o.d"
  "CMakeFiles/seve_baseline.dir/ring.cc.o"
  "CMakeFiles/seve_baseline.dir/ring.cc.o.d"
  "CMakeFiles/seve_baseline.dir/zoned.cc.o"
  "CMakeFiles/seve_baseline.dir/zoned.cc.o.d"
  "libseve_baseline.a"
  "libseve_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
