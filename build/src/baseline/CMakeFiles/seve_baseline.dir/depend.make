# Empty dependencies file for seve_baseline.
# This may be replaced when dependencies are built.
