file(REMOVE_RECURSE
  "libseve_baseline.a"
)
