# Empty dependencies file for seve_protocol.
# This may be replaced when dependencies are built.
