file(REMOVE_RECURSE
  "CMakeFiles/seve_protocol.dir/basic_client.cc.o"
  "CMakeFiles/seve_protocol.dir/basic_client.cc.o.d"
  "CMakeFiles/seve_protocol.dir/basic_server.cc.o"
  "CMakeFiles/seve_protocol.dir/basic_server.cc.o.d"
  "CMakeFiles/seve_protocol.dir/interest.cc.o"
  "CMakeFiles/seve_protocol.dir/interest.cc.o.d"
  "CMakeFiles/seve_protocol.dir/lock_protocol.cc.o"
  "CMakeFiles/seve_protocol.dir/lock_protocol.cc.o.d"
  "CMakeFiles/seve_protocol.dir/occ_protocol.cc.o"
  "CMakeFiles/seve_protocol.dir/occ_protocol.cc.o.d"
  "CMakeFiles/seve_protocol.dir/pending_queue.cc.o"
  "CMakeFiles/seve_protocol.dir/pending_queue.cc.o.d"
  "CMakeFiles/seve_protocol.dir/server_queue.cc.o"
  "CMakeFiles/seve_protocol.dir/server_queue.cc.o.d"
  "CMakeFiles/seve_protocol.dir/seve_client.cc.o"
  "CMakeFiles/seve_protocol.dir/seve_client.cc.o.d"
  "CMakeFiles/seve_protocol.dir/seve_server.cc.o"
  "CMakeFiles/seve_protocol.dir/seve_server.cc.o.d"
  "libseve_protocol.a"
  "libseve_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seve_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
