
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/basic_client.cc" "src/protocol/CMakeFiles/seve_protocol.dir/basic_client.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/basic_client.cc.o.d"
  "/root/repo/src/protocol/basic_server.cc" "src/protocol/CMakeFiles/seve_protocol.dir/basic_server.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/basic_server.cc.o.d"
  "/root/repo/src/protocol/interest.cc" "src/protocol/CMakeFiles/seve_protocol.dir/interest.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/interest.cc.o.d"
  "/root/repo/src/protocol/lock_protocol.cc" "src/protocol/CMakeFiles/seve_protocol.dir/lock_protocol.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/lock_protocol.cc.o.d"
  "/root/repo/src/protocol/occ_protocol.cc" "src/protocol/CMakeFiles/seve_protocol.dir/occ_protocol.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/occ_protocol.cc.o.d"
  "/root/repo/src/protocol/pending_queue.cc" "src/protocol/CMakeFiles/seve_protocol.dir/pending_queue.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/pending_queue.cc.o.d"
  "/root/repo/src/protocol/server_queue.cc" "src/protocol/CMakeFiles/seve_protocol.dir/server_queue.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/server_queue.cc.o.d"
  "/root/repo/src/protocol/seve_client.cc" "src/protocol/CMakeFiles/seve_protocol.dir/seve_client.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/seve_client.cc.o.d"
  "/root/repo/src/protocol/seve_server.cc" "src/protocol/CMakeFiles/seve_protocol.dir/seve_server.cc.o" "gcc" "src/protocol/CMakeFiles/seve_protocol.dir/seve_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/seve_net.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/seve_world.dir/DependInfo.cmake"
  "/root/repo/build/src/action/CMakeFiles/seve_action.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/seve_store.dir/DependInfo.cmake"
  "/root/repo/build/src/spatial/CMakeFiles/seve_spatial.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
