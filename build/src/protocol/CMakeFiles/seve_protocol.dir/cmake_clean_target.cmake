file(REMOVE_RECURSE
  "libseve_protocol.a"
)
