# Empty dependencies file for bench_ablation_omega.
# This may be replaced when dependencies are built.
