file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_omega.dir/bench_ablation_omega.cc.o"
  "CMakeFiles/bench_ablation_omega.dir/bench_ablation_omega.cc.o.d"
  "bench_ablation_omega"
  "bench_ablation_omega.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_omega.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
