file(REMOVE_RECURSE
  "CMakeFiles/bench_server_capacity.dir/bench_server_capacity.cc.o"
  "CMakeFiles/bench_server_capacity.dir/bench_server_capacity.cc.o.d"
  "bench_server_capacity"
  "bench_server_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_server_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
