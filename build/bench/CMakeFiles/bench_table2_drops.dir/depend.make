# Empty dependencies file for bench_table2_drops.
# This may be replaced when dependencies are built.
