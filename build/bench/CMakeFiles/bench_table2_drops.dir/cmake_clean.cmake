file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_drops.dir/bench_table2_drops.cc.o"
  "CMakeFiles/bench_table2_drops.dir/bench_table2_drops.cc.o.d"
  "bench_table2_drops"
  "bench_table2_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
