# Empty dependencies file for bench_closure_cost.
# This may be replaced when dependencies are built.
