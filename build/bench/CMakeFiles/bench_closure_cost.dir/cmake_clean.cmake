file(REMOVE_RECURSE
  "CMakeFiles/bench_closure_cost.dir/bench_closure_cost.cc.o"
  "CMakeFiles/bench_closure_cost.dir/bench_closure_cost.cc.o.d"
  "bench_closure_cost"
  "bench_closure_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_closure_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
