# Empty dependencies file for bench_sectionII_classic.
# This may be replaced when dependencies are built.
