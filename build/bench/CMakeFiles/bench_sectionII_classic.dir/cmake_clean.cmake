file(REMOVE_RECURSE
  "CMakeFiles/bench_sectionII_classic.dir/bench_sectionII_classic.cc.o"
  "CMakeFiles/bench_sectionII_classic.dir/bench_sectionII_classic.cc.o.d"
  "bench_sectionII_classic"
  "bench_sectionII_classic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sectionII_classic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
