file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ring.dir/bench_fig10_ring.cc.o"
  "CMakeFiles/bench_fig10_ring.dir/bench_fig10_ring.cc.o.d"
  "bench_fig10_ring"
  "bench_fig10_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
