# Empty compiler generated dependencies file for bench_zoning_crowd.
# This may be replaced when dependencies are built.
