file(REMOVE_RECURSE
  "CMakeFiles/bench_zoning_crowd.dir/bench_zoning_crowd.cc.o"
  "CMakeFiles/bench_zoning_crowd.dir/bench_zoning_crowd.cc.o.d"
  "bench_zoning_crowd"
  "bench_zoning_crowd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zoning_crowd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
