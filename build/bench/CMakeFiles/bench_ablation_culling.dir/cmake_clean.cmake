file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_culling.dir/bench_ablation_culling.cc.o"
  "CMakeFiles/bench_ablation_culling.dir/bench_ablation_culling.cc.o.d"
  "bench_ablation_culling"
  "bench_ablation_culling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_culling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
