# Empty dependencies file for bench_ablation_culling.
# This may be replaced when dependencies are built.
